// Package hookshape checks the engine.Hooks contract (DESIGN.md §5.2):
// hooks run synchronously on the driver's execution path under
// whatever locks that path holds, so a hook that blocks stalls every
// worker behind it, and a hook that calls back into the engine or
// driver mutating APIs re-enters locks already held. The obs plane and
// the record tap both live behind hooks; this analyzer keeps them (and
// any future observer) within the contract the engine's prose states.
//
// Hook roots are gathered from every construction shape in the tree:
// engine.Hooks composite literal fields, assignments to Hooks fields
// (h.Commit = fn), arguments to engine.OnStages, and — because both
// obs and record wrap the previous hook with a combinator — function-
// valued arguments of any call assigned into a Hooks field.
//
// Two transitive facts over the call graph:
//
//   - mayBlock: the function (or anything it calls) sleeps, sends or
//     receives on a channel, selects without a default, or waits on a
//     sync.Cond/sync.WaitGroup. Plain sync.Mutex Lock/Unlock is
//     deliberately allowed — the obs and record hooks serialize on
//     leaf mutexes that no engine path holds, which is the sanctioned
//     pattern for observer state.
//   - reenters: the function reaches an engine.Core mutating method, a
//     txn driver entry point, or a WAL sink append/sync — the APIs
//     that acquire engine or driver locks.
//
// Violations are reported at the site that installs the hook, naming
// the offending path, so the fix (move the work off the hook, or
// document an exception with //rsvet:allow hookshape) happens where
// the hook is wired up.
package hookshape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"relser/internal/analysis"
	"relser/internal/analysis/callgraph"
)

// Analyzer is the hook-contract check.
var Analyzer = &analysis.Analyzer{
	Name: "hookshape",
	Doc:  "check that engine.Hooks observers neither block nor call back into engine/driver mutating APIs",
	Run:  run,
}

const enginePath = "relser/internal/engine"

// coreMutators are the engine.Core methods that take engine locks or
// change run state; the observational getters (Clock, Committed,
// Observe*) are fine from a hook.
var coreMutators = map[string]bool{
	"Admit": true, "Decide": true, "Unrecoverable": true, "Apply": true,
	"TryCommit": true, "AbortCascade": true, "AbortAll": true,
	"Finalize": true, "LogWAL": true, "FlushWAL": true, "JitterSleep": true,
}

// reenterPrefixes are driver and sink identities a hook must not reach.
var reenterPrefixes = []string{
	"relser/internal/txn.(*Runner).",
	"relser/internal/txn.(*ConcurrentRunner).",
	"relser/internal/storage.(*WAL).Append",
	"relser/internal/storage.(*WAL).Sync",
	"relser/internal/storage.(*ShardedWAL).Append",
	"relser/internal/storage.(*ShardedWAL).Sync",
}

// blockingWaits are method identities that park the caller.
var blockingWaits = map[callgraph.FuncID]bool{
	"sync.(*WaitGroup).Wait": true,
	"sync.(*Cond).Wait":      true,
	"time.Sleep":             true,
}

type finding struct {
	pkgPath string
	pos     token.Pos
	message string
}

func run(pass *analysis.Pass) error {
	if pass.Graph == nil {
		return fmt.Errorf("hookshape: no call graph on pass")
	}
	findings := callgraph.Memo(pass.Graph, "hookshape.findings", func() []finding {
		return compute(pass.Graph)
	})
	path := pass.Pkg.Path()
	for _, f := range findings {
		if f.pkgPath == path {
			pass.Reportf(f.pos, "%s", f.message)
		}
	}
	return nil
}

// hookSite is one place a function value is installed as a hook.
type hookSite struct {
	fn    callgraph.FuncID
	pos   token.Pos
	pkg   string // package to report in
	field string // hook field name, or "OnStages"
}

func compute(g *callgraph.Graph) []finding {
	sites := collectSites(g)

	mayBlock := g.Transitive(func(n *callgraph.Node) bool { return blocksDirectly(g, n) })
	reenters := g.Transitive(func(n *callgraph.Node) bool {
		for _, e := range n.Calls {
			if isReenter(e.Callee) {
				return true
			}
		}
		return false
	})

	var out []finding
	for _, s := range sites {
		if n := g.Nodes[s.fn]; n == nil {
			continue
		}
		if mayBlock[s.fn] {
			out = append(out, finding{
				pkgPath: s.pkg, pos: s.pos,
				message: fmt.Sprintf("hook %s may block (%s): hooks run synchronously under driver locks; move the wait off the hook or document with //rsvet:allow hookshape", s.field, blockReason(g, s.fn, mayBlock)),
			})
		}
		if reenters[s.fn] {
			out = append(out, finding{
				pkgPath: s.pkg, pos: s.pos,
				message: fmt.Sprintf("hook %s calls back into engine/driver mutating APIs (%s): the engine's locks are already held on the hook path", s.field, reenterReason(g, s.fn, reenters)),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pkgPath != out[j].pkgPath {
			return out[i].pkgPath < out[j].pkgPath
		}
		return out[i].pos < out[j].pos
	})
	return out
}

// collectSites finds every hook installation in the loaded packages.
func collectSites(g *callgraph.Graph) []hookSite {
	var sites []hookSite
	ids := make([]callgraph.FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Nodes[id]
		if n.Decl == nil {
			continue // literals are walked via their enclosing decl
		}
		info := n.Pkg.TypesInfo
		ast.Inspect(n.Body, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.CompositeLit:
				if !isHooksType(info.Types[e].Type) {
					return true
				}
				for _, elt := range e.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					field := "?"
					if k, ok := kv.Key.(*ast.Ident); ok {
						field = k.Name
					}
					sites = append(sites, valueSites(g, n, kv.Value, field)...)
				}
			case *ast.AssignStmt:
				for i, lhs := range e.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(e.Rhs) {
						continue
					}
					tv, ok := info.Types[sel.X]
					if !ok || !isHooksType(tv.Type) {
						continue
					}
					sites = append(sites, valueSites(g, n, e.Rhs[i], sel.Sel.Name)...)
				}
			case *ast.CallExpr:
				if id, ok := g.CalleeOf(n.Pkg, e); ok && strings.HasSuffix(string(id), ".OnStages") {
					for _, arg := range e.Args {
						sites = append(sites, valueSites(g, n, arg, "OnStages")...)
					}
				}
			}
			return true
		})
	}
	return sites
}

// valueSites resolves a hook-valued expression to the functions it
// installs: a direct reference, a literal, or — for combinator wrappers
// like chainHook(a, b) — every function-valued argument of the call.
func valueSites(g *callgraph.Graph, n *callgraph.Node, expr ast.Expr, field string) []hookSite {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.FuncLit:
		if child := g.LitNode(e); child != nil {
			return []hookSite{{fn: child.ID, pos: e.Pos(), pkg: n.Pkg.PkgPath, field: field}}
		}
	case *ast.Ident:
		if fn, ok := n.Pkg.TypesInfo.Uses[e].(*types.Func); ok {
			return []hookSite{{fn: callgraph.IDOf(fn), pos: e.Pos(), pkg: n.Pkg.PkgPath, field: field}}
		}
	case *ast.SelectorExpr:
		if fn, ok := n.Pkg.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return []hookSite{{fn: callgraph.IDOf(fn), pos: e.Pos(), pkg: n.Pkg.PkgPath, field: field}}
		}
	case *ast.CallExpr:
		var sites []hookSite
		for _, arg := range e.Args {
			sites = append(sites, valueSites(g, n, arg, field)...)
		}
		return sites
	}
	return nil
}

// isHooksType matches engine.Hooks (txn.Hooks is the same named type).
func isHooksType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == enginePath && obj.Name() == "Hooks"
}

// blocksDirectly reports whether one body parks: channel operations,
// default-less selects, or a blocking wait call.
func blocksDirectly(g *callgraph.Graph, n *callgraph.Node) bool {
	found := false
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch e := node.(type) {
		case *ast.FuncLit:
			return false // its own node
		case *ast.GoStmt:
			return false // spawned work does not block the hook
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range e.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := g.CalleeOf(n.Pkg, e); ok && blockingWaits[id] {
				found = true
			}
		}
		return !found
	})
	return found
}

func isReenter(id callgraph.FuncID) bool {
	s := string(id)
	if name, ok := strings.CutPrefix(s, enginePath+".(*Core)."); ok {
		return coreMutators[name]
	}
	for _, p := range reenterPrefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// blockReason names a blocking step on the hook's path.
func blockReason(g *callgraph.Graph, root callgraph.FuncID, mayBlock map[callgraph.FuncID]bool) string {
	return pathReason(g, root, func(n *callgraph.Node) (string, bool) {
		if blocksDirectly(g, n) {
			return "blocks in " + shortID(n.ID), true
		}
		return "", false
	}, mayBlock)
}

// reenterReason names a re-entering call on the hook's path.
func reenterReason(g *callgraph.Graph, root callgraph.FuncID, reenters map[callgraph.FuncID]bool) string {
	return pathReason(g, root, func(n *callgraph.Node) (string, bool) {
		for _, e := range n.Calls {
			if isReenter(e.Callee) {
				return "calls " + shortID(e.Callee), true
			}
		}
		return "", false
	}, reenters)
}

// pathReason walks fact-holding edges from root to a node where the
// fact is direct, rendering a short explanation.
func pathReason(g *callgraph.Graph, root callgraph.FuncID, direct func(*callgraph.Node) (string, bool), fact map[callgraph.FuncID]bool) string {
	seen := map[callgraph.FuncID]bool{}
	id := root
	for !seen[id] {
		seen[id] = true
		n := g.Nodes[id]
		if n == nil {
			break
		}
		if msg, ok := direct(n); ok {
			if id == root {
				return msg
			}
			return "via " + shortID(root) + ", " + msg
		}
		next := id
		for _, e := range n.Calls {
			if fact[e.Callee] && !seen[e.Callee] {
				next = e.Callee
				break
			}
		}
		if next == id {
			break
		}
		id = next
	}
	return "transitively"
}

func shortID(id callgraph.FuncID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
