package hookshape_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/hookshape"
)

func TestHookshape(t *testing.T) {
	analysistest.Run(t, hookshape.Analyzer, "../testdata/src/hookshape")
}
