// Package load type-checks Go packages for the rsvet analyzers
// without golang.org/x/tools/go/packages: it shells out to the go
// tool for package metadata and compiled export data
// (`go list -deps -export -json`), parses the target packages' sources
// and type-checks them against the export data of their dependencies.
// The approach is the same one x/tools' go/packages driver uses; only
// the target packages are type-checked from source, every dependency
// (including the standard library) is imported from its compiled
// export file, so loading stays fast and fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Packages loads and type-checks the packages matching the go-list
// patterns, resolved relative to dir (a directory inside the module).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, absJoin(lp.Dir, lp.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// Dir loads the single package formed by the .go files of dir, which
// need not be part of any module package tree (analysistest fixture
// directories under testdata/ are the intended callers). Imports are
// resolved through moduleDir's module: the fixtures may import both
// standard-library and module-local packages.
func Dir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	// Parse first to learn the import set, then ask the go tool for
	// export data of exactly those packages and their dependencies.
	parsed, err := parseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var imports []string
	for _, f := range parsed {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		_, exports, err = goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
	}
	imp := exportImporter(fset, exports)
	return checkParsed(fset, imp, parsed[0].Name.Name, dir, parsed)
}

// goList runs `go list -deps -export -json` on the patterns and
// returns the matched (non-dependency) packages plus an import-path to
// export-data-file map covering the whole dependency closure.
func goList(dir string, patterns []string) ([]listedPkg, map[string]string, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("load: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	return targets, exports, nil
}

// exportImporter imports packages from compiled export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, paths []string) (*Package, error) {
	files, err := parseFiles(fset, paths)
	if err != nil {
		return nil, err
	}
	return checkParsed(fset, imp, pkgPath, dir, files)
}

func checkParsed(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir, Fset: fset,
		Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

func absJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}
