package terminalops_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/terminalops"
)

func TestTerminalops(t *testing.T) {
	analysistest.Run(t, terminalops.Analyzer, "../testdata/src/terminalops")
}
