// Package terminalops flags protocol API misuse around transaction
// termination: once Commit(i) or Abort(i) has been issued to a
// scheduler protocol for an instance, no further Request / CanCommit /
// Commit / Abort for the same instance may follow — the protocols
// drop all state for a terminated instance, so a late call either
// panics or silently corrupts the decision graph. A subsequent
// Begin(i, ...) re-admits the instance and resets the tracking.
//
// The analysis is intraprocedural and syntactic about identity: calls
// are matched when both the receiver expression and the instance
// expression render identically. Tracking follows straight-line
// statement order inside each block; loop bodies start fresh (a
// terminal call late in one iteration does not poison the next).
package terminalops

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"relser/internal/analysis"
)

// Analyzer is the terminal-operation check.
var Analyzer = &analysis.Analyzer{
	Name: "terminalops",
	Doc:  "check that no protocol call follows Commit/Abort for the same instance",
	Run:  run,
}

const schedPath = "relser/internal/sched"

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				w.block(fn.Body.List, map[string]string{})
			}
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// block scans statements in order. terminated maps "recv\x00instance"
// to the terminal call's name. Branch bodies inherit a copy; loop
// bodies start empty.
func (w *walker) block(list []ast.Stmt, terminated map[string]string) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			w.call(s.X, terminated)
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				w.call(e, terminated)
			}
		case *ast.IfStmt:
			w.block(s.Body.List, copyMap(terminated))
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					w.block(blk.List, copyMap(terminated))
				} else if elif, ok := s.Else.(*ast.IfStmt); ok {
					w.block([]ast.Stmt{elif}, copyMap(terminated))
				}
			}
		case *ast.BlockStmt:
			w.block(s.List, copyMap(terminated))
		case *ast.ForStmt:
			w.block(s.Body.List, map[string]string{})
		case *ast.RangeStmt:
			w.block(s.Body.List, map[string]string{})
		case *ast.SwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					w.block(cc.Body, copyMap(terminated))
				}
			}
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				w.block(lit.Body.List, map[string]string{})
			}
		}
	}
}

// call inspects one expression for protocol method calls and updates
// or checks the terminated set.
func (w *walker) call(e ast.Expr, terminated map[string]string) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch name {
		case "Begin", "Request", "CanCommit", "Commit", "Abort":
		default:
			return true
		}
		if !w.isSchedMethod(sel.Sel) {
			return true
		}
		inst, ok := instanceArg(name, call)
		if !ok {
			return true
		}
		key := render(sel.X) + "\x00" + inst
		switch name {
		case "Begin":
			delete(terminated, key)
		case "Commit", "Abort":
			if prior, done := terminated[key]; done {
				w.report(call.Pos(), name, inst, prior)
			}
			terminated[key] = name
		default: // Request, CanCommit
			if prior, done := terminated[key]; done {
				w.report(call.Pos(), name, inst, prior)
			}
		}
		return true
	})
}

func (w *walker) report(pos token.Pos, name, inst, prior string) {
	w.pass.Reportf(pos,
		"%s for instance %s after terminal %s; terminated instances drop protocol state and must be re-admitted with Begin",
		name, inst, prior)
}

// isSchedMethod reports whether the selected method belongs to the
// scheduler-protocol package (a concrete protocol or the Protocol
// interface itself).
func (w *walker) isSchedMethod(id *ast.Ident) bool {
	obj, ok := w.pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == schedPath
}

// instanceArg extracts the rendered instance expression from a
// protocol call: the first argument for Begin/CanCommit/Commit/Abort,
// the Instance field of the OpRequest literal for Request.
func instanceArg(name string, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	if name != "Request" {
		return render(call.Args[0]), true
	}
	lit, ok := call.Args[0].(*ast.CompositeLit)
	if !ok {
		return "", false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Instance" {
			return render(kv.Value), true
		}
	}
	return "", false
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func render(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
