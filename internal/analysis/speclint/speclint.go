// Package speclint statically analyzes relative-atomicity
// specifications against the transaction programs they govern,
// without reference to any particular schedule. Three checks:
//
//  1. Lemma 1 degeneracy: a spec that is absolute for every pair
//     collapses relative serializability to classical conflict
//     serializability — the relaxation the paper is about is vacuous.
//  2. Redundant breakpoints: chopping Atomicity(Ti, Tj) when Ti and
//     Tj lie in different conflict components can never admit an
//     interleaving — no depends-on path can ever connect the two
//     transactions, so no F- or B-arc involving the pair arises in
//     any schedule and the breakpoints are dead weight.
//  3. Static potential-RSG certification: if, for every ordered pair
//     of transactions in the same conflict component, Atomicity(Ti,
//     Tj) is fully chopped (all singleton units), then every RSG arc
//     in every schedule points forward in schedule time and every
//     execution is relatively serializable — the spec is certified
//     safe once, statically, and per-schedule certification can be
//     skipped. Failing to certify is not a defect — forbidding some
//     interleavings is what a constraining spec is for — so each
//     blocking pair is reported as a warning; when some unit keeps
//     two operations u < w together relative to a transaction holding
//     an operation v conflicting with both, the warning spells out
//     the concrete potential cycle v -D-> w -I..-> PushForward(u)
//     -F-> v realized by any schedule placing v between u and w.
//
// The certification criterion is sound but conservative: an
// uncertified spec may still hold for the schedules a particular
// workload produces; those need the dynamic Theorem 1 check.
package speclint

import (
	"fmt"
	"sort"

	"relser/internal/core"
)

// Severity ranks a finding.
type Severity int

const (
	// Info findings are observations that need no action.
	Info Severity = iota
	// Warn findings are dead or ineffective spec structure.
	Warn
	// Error findings are specs that defeat their own purpose
	// (Lemma 1 degeneracy).
	Error
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Finding is one diagnostic about a spec.
type Finding struct {
	// Check names the rule: "lemma1", "breakpoint", "potential-rsg".
	Check    string
	Severity Severity
	// Pair identifies the Atomicity(Ti, Tj) the finding concerns;
	// zero for spec-wide findings.
	Pair [2]core.TxnID
	// Message is the human-readable diagnostic.
	Message string
}

// String renders "severity: message [check]".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Severity, f.Message, f.Check)
}

// Report is the outcome of analyzing one spec.
type Report struct {
	Findings []Finding
	// Certified is true when the static potential-RSG argument proves
	// every execution under the spec relatively serializable.
	Certified bool
}

// HasErrors reports whether any finding is Error severity.
func (r Report) HasErrors() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Check analyzes the spec against its transaction set.
func Check(sp *core.Spec) Report {
	ts := sp.Set()
	var rep Report
	comp := conflictComponents(ts)
	checkLemma1(sp, ts, &rep)
	checkBreakpoints(sp, ts, comp, &rep)
	certify(sp, ts, comp, &rep)
	return rep
}

// CheckInstance analyzes a parsed instance's spec.
func CheckInstance(inst *core.Instance) Report {
	return Check(inst.Spec)
}

// checkLemma1 detects the degenerate spec of Lemma 1: absolute
// atomicity for every pair makes relative serializability coincide
// with conflict serializability.
func checkLemma1(sp *core.Spec, ts *core.TxnSet, rep *Report) {
	if ts.NumTxns() < 2 || !sp.IsAbsolute() {
		return
	}
	rep.Findings = append(rep.Findings, Finding{
		Check:    "lemma1",
		Severity: Error,
		Message: "spec is absolute for every transaction pair: by Lemma 1 relative serializability " +
			"collapses to classical conflict serializability and the relaxation admits nothing; " +
			"chop at least one Atomicity(Ti, Tj) with SetUnits/CutAfter, or use a plain " +
			"serializability checker instead",
	})
}

// checkBreakpoints flags chopped pairs whose transactions can never
// depend on each other: depends-on chains are confined to conflict
// components, so breakpoints across components are unsatisfiable —
// they never admit an interleaving the absolute spec would forbid.
func checkBreakpoints(sp *core.Spec, ts *core.TxnSet, comp map[core.TxnID]core.TxnID, rep *Report) {
	for _, ti := range ts.Txns() {
		for _, tj := range ts.Txns() {
			if ti.ID == tj.ID || sp.NumUnits(ti.ID, tj.ID) <= 1 {
				continue
			}
			if comp[ti.ID] != comp[tj.ID] {
				rep.Findings = append(rep.Findings, Finding{
					Check:    "breakpoint",
					Severity: Warn,
					Pair:     [2]core.TxnID{ti.ID, tj.ID},
					Message: fmt.Sprintf(
						"Atomicity(T%d, T%d) declares %d units but no chain of conflicts connects T%d and T%d: "+
							"no depends-on path can ever link them, so these breakpoints never admit an interleaving; "+
							"drop them or leave the pair absolute",
						ti.ID, tj.ID, sp.NumUnits(ti.ID, tj.ID), ti.ID, tj.ID),
				})
			}
		}
	}
}

// certify runs the static potential-RSG argument. Every ordered pair
// of distinct transactions in the same conflict component must be
// fully chopped: then PushForward(u) = u and PullBackward(v) = v for
// every dependency arc, all F- and B-arcs collapse onto their forward
// D-arcs, and since I- and D-arcs always point forward in schedule
// time the RSG of every schedule is acyclic (Theorem 1: every
// execution is relatively serializable). Cross-component pairs never
// acquire D-arcs, so their atomicity is irrelevant to acyclicity.
func certify(sp *core.Spec, ts *core.TxnSet, comp map[core.TxnID]core.TxnID, rep *Report) {
	ok := true
	for _, ti := range ts.Txns() {
		for _, tj := range ts.Txns() {
			if ti.ID == tj.ID || comp[ti.ID] != comp[tj.ID] {
				continue
			}
			if sp.NumUnits(ti.ID, tj.ID) == ti.Len() {
				continue // fully chopped: every unit a singleton
			}
			ok = false
			reportUncertifiedPair(sp, ti, tj, rep)
		}
	}
	rep.Certified = ok
	if ok {
		rep.Findings = append(rep.Findings, Finding{
			Check:    "potential-rsg",
			Severity: Info,
			Message: "static potential-RSG is acyclic: every atomicity relation between conflicting " +
				"transactions is fully chopped, so all RSG arcs point forward in any schedule; " +
				"every execution is relatively serializable and per-schedule certification may be skipped",
		})
	}
}

// reportUncertifiedPair explains one certification failure with a
// single Warn finding. A non-singleton unit is what a constraining
// spec is for — forbidding some interleavings is not a defect — so
// failing to certify is never an error; but when a concrete witness
// exists (a unit keeping u < w together while some v in Tj conflicts
// with both) the finding spells out the potential cycle
// v -D-> w -I..-> PushForward(u) -F-> v that per-schedule
// certification will have to keep rejecting.
func reportUncertifiedPair(sp *core.Spec, ti, tj *core.Transaction, rep *Report) {
	msg := fmt.Sprintf(
		"Atomicity(T%d, T%d) keeps %d operations in %d unit(s) while T%d and T%d are conflict-connected: "+
			"the static argument cannot certify the spec; executions need per-schedule RSG certification",
		ti.ID, tj.ID, ti.Len(), sp.NumUnits(ti.ID, tj.ID), ti.ID, tj.ID)
	if u, v, w, found := cycleWitness(sp, ti, tj); found {
		msg += fmt.Sprintf(
			" (e.g. %s and %s share a unit and %s conflicts with both: a schedule interleaving %s "+
				"between them closes the potential cycle %s -D-> %s -I..-> %s -F-> %s)",
			u, w, v, v,
			v, w, sp.PushForward(u, tj.ID), v)
	}
	rep.Findings = append(rep.Findings, Finding{
		Check:    "potential-rsg",
		Severity: Warn,
		Pair:     [2]core.TxnID{ti.ID, tj.ID},
		Message:  msg,
	})
}

// cycleWitness searches Atomicity(Ti, Tj) for a unit holding two
// operations u < w and an operation v of Tj conflicting with both.
func cycleWitness(sp *core.Spec, ti, tj *core.Transaction) (u, v, w core.Op, found bool) {
	for k := 0; k < sp.NumUnits(ti.ID, tj.ID); k++ {
		start, end := sp.Unit(ti.ID, tj.ID, k)
		for a := start; a < end; a++ {
			for b := a + 1; b <= end; b++ {
				for s := 0; s < tj.Len(); s++ {
					cand := tj.Op(s)
					if cand.ConflictsWith(ti.Op(a)) && cand.ConflictsWith(ti.Op(b)) {
						return ti.Op(a), cand, ti.Op(b), true
					}
				}
			}
		}
	}
	return core.Op{}, core.Op{}, core.Op{}, false
}

// ConflictComponents exposes the conflict-connectivity partition for
// spec synthesis (rsvet -infer): cross-component pairs never acquire
// D-arcs, so a synthesizer only needs to chop within components.
func ConflictComponents(ts *core.TxnSet) map[core.TxnID]core.TxnID {
	return conflictComponents(ts)
}

// conflictComponents computes the connected components of the
// transaction conflict graph with a union-find keyed by TxnID: for
// every object written by at least one transaction, all transactions
// accessing the object are joined (readers connect only through a
// writer, which is exactly conflict connectivity). The returned map
// sends each TxnID to its component representative.
func conflictComponents(ts *core.TxnSet) map[core.TxnID]core.TxnID {
	parent := map[core.TxnID]core.TxnID{}
	var find func(core.TxnID) core.TxnID
	find = func(x core.TxnID) core.TxnID {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, t := range ts.Txns() {
		parent[t.ID] = t.ID
	}
	type access struct {
		txns    []core.TxnID
		written bool
	}
	objects := map[string]*access{}
	for _, t := range ts.Txns() {
		for seq := 0; seq < t.Len(); seq++ {
			op := t.Op(seq)
			a := objects[op.Object]
			if a == nil {
				a = &access{}
				objects[op.Object] = a
			}
			if len(a.txns) == 0 || a.txns[len(a.txns)-1] != t.ID {
				a.txns = append(a.txns, t.ID)
			}
			if op.Kind == core.WriteOp {
				a.written = true
			}
		}
	}
	names := make([]string, 0, len(objects))
	for name := range objects {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := objects[name]
		if !a.written {
			continue
		}
		for _, id := range a.txns[1:] {
			parent[find(a.txns[0])] = find(id)
		}
	}
	out := map[core.TxnID]core.TxnID{}
	for _, t := range ts.Txns() {
		out[t.ID] = find(t.ID)
	}
	return out
}
