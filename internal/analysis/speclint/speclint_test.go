package speclint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relser/internal/analysis/speclint"
	"relser/internal/core"
)

func mustSet(t *testing.T, txns ...*core.Transaction) *core.TxnSet {
	t.Helper()
	ts, err := core.NewTxnSet(txns...)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func findings(rep speclint.Report, check string) []speclint.Finding {
	var out []speclint.Finding
	for _, f := range rep.Findings {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// TestLemma1Collapse: an absolute spec over conflicting transactions
// is the degenerate case of Lemma 1 and must be rejected with an
// actionable diagnostic.
func TestLemma1Collapse(t *testing.T) {
	ts := mustSet(t,
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.W("x")),
	)
	rep := speclint.Check(core.NewSpec(ts)) // NewSpec defaults to absolute
	l1 := findings(rep, "lemma1")
	if len(l1) != 1 || l1[0].Severity != speclint.Error {
		t.Fatalf("want one lemma1 error, got %v", rep.Findings)
	}
	if !strings.Contains(l1[0].Message, "conflict serializability") ||
		!strings.Contains(l1[0].Message, "SetUnits") {
		t.Fatalf("lemma1 diagnostic not actionable: %s", l1[0].Message)
	}
	if !rep.HasErrors() || rep.Certified {
		t.Fatalf("degenerate spec must have errors and no certification: %+v", rep)
	}
}

// TestSingleTxnNotDegenerate: with fewer than two transactions there
// is no pair to relax, so no Lemma 1 finding.
func TestSingleTxnNotDegenerate(t *testing.T) {
	ts := mustSet(t, core.T(1, core.R("x"), core.W("x")))
	rep := speclint.Check(core.NewSpec(ts))
	if len(findings(rep, "lemma1")) != 0 {
		t.Fatalf("unexpected lemma1 finding: %v", rep.Findings)
	}
	if !rep.Certified {
		t.Fatalf("single-transaction spec is trivially safe: %+v", rep)
	}
}

// TestUnsatisfiableBreakpoints: chopping a pair whose transactions
// touch disjoint objects can never admit an interleaving — the
// breakpoints are dead and must be flagged.
func TestUnsatisfiableBreakpoints(t *testing.T) {
	ts := mustSet(t,
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.R("y"), core.W("y")),
	)
	sp := core.NewSpec(ts)
	if err := sp.SetUnits(1, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	rep := speclint.Check(sp)
	bp := findings(rep, "breakpoint")
	if len(bp) != 1 || bp[0].Severity != speclint.Warn {
		t.Fatalf("want one breakpoint warning, got %v", rep.Findings)
	}
	if bp[0].Pair != [2]core.TxnID{1, 2} {
		t.Fatalf("breakpoint finding names wrong pair: %+v", bp[0])
	}
	// Disjoint transactions are safe regardless of the dead chop.
	if !rep.Certified {
		t.Fatalf("disjoint transactions must certify: %+v", rep)
	}
}

// TestStaticCertification: fully chopping every atomicity relation
// between conflicting transactions certifies the spec for every
// execution (all F/B arcs collapse onto forward D-arcs).
func TestStaticCertification(t *testing.T) {
	ts := mustSet(t,
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.W("x"), core.R("x")),
	)
	sp := core.NewSpec(ts)
	sp.AllowAllPairs()
	rep := speclint.Check(sp)
	if !rep.Certified {
		t.Fatalf("fully chopped spec must certify: %+v", rep)
	}
	if rep.HasErrors() {
		t.Fatalf("unexpected errors: %v", rep.Findings)
	}
	if len(findings(rep, "potential-rsg")) != 1 {
		t.Fatalf("want one certification info finding, got %v", rep.Findings)
	}
}

// TestCertifiedSpecHoldsOnAllInterleavings cross-checks the static
// certification against the dynamic Theorem 1 oracle: every
// interleaving of the certified programs must be relatively
// serializable.
func TestCertifiedSpecHoldsOnAllInterleavings(t *testing.T) {
	ts := mustSet(t,
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.W("x"), core.R("x")),
	)
	sp := core.NewSpec(ts)
	sp.AllowAllPairs()
	if rep := speclint.Check(sp); !rep.Certified {
		t.Fatalf("precondition: spec must certify: %+v", rep)
	}
	for _, s := range allInterleavings(t, ts) {
		if !core.IsRelativelySerializable(s, sp) {
			t.Fatalf("certified spec violated by schedule %v", s)
		}
	}
}

// TestPotentialCycleWitness: a unit keeping u < w together while the
// other transaction holds an operation conflicting with both blocks
// certification, and the warning must carry the concrete cycle the
// dynamic check will keep rejecting.
func TestPotentialCycleWitness(t *testing.T) {
	ts := mustSet(t,
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.W("x"), core.R("y")),
	)
	sp := core.NewSpec(ts)
	// Chop T2 fully but leave Atomicity(T1, T2) absolute: w2[x]
	// conflicts with both r1[x] and w1[x] in T1's single unit.
	if err := sp.AllowAll(2, 1); err != nil {
		t.Fatal(err)
	}
	rep := speclint.Check(sp)
	var hit *speclint.Finding
	for i, f := range rep.Findings {
		if f.Check == "potential-rsg" && f.Severity == speclint.Warn &&
			f.Pair == [2]core.TxnID{1, 2} {
			hit = &rep.Findings[i]
		}
	}
	if hit == nil {
		t.Fatalf("want potential-rsg warning with witness, got %v", rep.Findings)
	}
	// A constraining (non-degenerate) spec is not an error.
	if rep.HasErrors() {
		t.Fatalf("non-degenerate spec must not error: %v", rep.Findings)
	}
	for _, frag := range []string{"r1[x]", "w1[x]", "w2[x]", "-D->", "-F->"} {
		if !strings.Contains(hit.Message, frag) {
			t.Fatalf("witness diagnostic missing %q: %s", frag, hit.Message)
		}
	}
	// The witness is real: the interleaving r1 w2 w1 must fail the
	// dynamic check.
	s, err := core.ParseSchedule(ts, "r1[x] w2[x] w1[x] r2[y]")
	if err != nil {
		t.Fatal(err)
	}
	if core.IsRelativelySerializable(s, sp) {
		t.Fatal("witness schedule unexpectedly serializable")
	}
}

// TestFig1NotCertifiable: the paper's Figure 1 spec admits some
// interleavings but not all — it must neither certify nor error.
func TestFig1NotCertifiable(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "core", "testdata", "instances", "fig1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inst, err := core.ParseInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	rep := speclint.CheckInstance(inst)
	if rep.Certified {
		t.Fatalf("Figure 1 spec must not statically certify: %+v", rep)
	}
	if len(findings(rep, "breakpoint")) != 0 {
		t.Fatalf("Figure 1 has no dead breakpoints: %v", rep.Findings)
	}
	if len(findings(rep, "lemma1")) != 0 {
		t.Fatalf("Figure 1 is not degenerate: %v", rep.Findings)
	}
}

// allInterleavings enumerates every schedule of the set (programs are
// short; the count stays tiny).
func allInterleavings(t *testing.T, ts *core.TxnSet) []*core.Schedule {
	t.Helper()
	var out []*core.Schedule
	next := make(map[core.TxnID]int)
	var ops []core.Op
	var rec func()
	rec = func() {
		if len(ops) == ts.NumOps() {
			s, err := core.NewSchedule(ts, append([]core.Op(nil), ops...))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
			return
		}
		for _, tx := range ts.Txns() {
			if next[tx.ID] < tx.Len() {
				ops = append(ops, tx.Op(next[tx.ID]))
				next[tx.ID]++
				rec()
				next[tx.ID]--
				ops = ops[:len(ops)-1]
			}
		}
	}
	rec()
	return out
}
