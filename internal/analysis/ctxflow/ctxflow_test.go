package ctxflow_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "../testdata/src/ctxflow")
}
