// Package ctxflow checks context propagation: the engine's
// cancellation story (watchdogs, deadline aborts, fault wedges that
// park on ctx) only works if the run context actually threads through
// every layer. Three rules:
//
//  1. A function that receives a context.Context must not manufacture
//     a fresh root with context.Background()/context.TODO() — doing so
//     detaches everything below it from the run's cancellation.
//  2. A function that receives a ctx must not call a callee's
//     ctx-less variant when a ctx-capable sibling exists: calling
//     Query when QueryContext is in the same scope (or DoCtx for Do,
//     method sets included) silently drops the ctx.
//  3. In internal packages (import path containing "internal"),
//     context.Background()/TODO() is forbidden outside the documented
//     allowlist: roots belong to process entry points (cmd/, tests,
//     experiment mains). Deliberate roots — servers with their own
//     lifecycle, detached recovery paths — carry //rsvet:allow ctxflow
//     with the reason.
//
// The check is local to each function body; function literals are
// scanned as part of their enclosing function (a closure sees the
// enclosing ctx). A ctx parameter named _ opts a function out of
// rules 1–2 (it cannot propagate what it cannot name).
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"relser/internal/analysis"
)

// Analyzer is the context-propagation check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "check that context.Context threads through ctx-capable call chains and no fresh roots are minted in internal packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	internal := strings.Contains(pass.Pkg.Path(), "internal")
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasNamedCtxParam(pass, fn) {
				checkCtxHolder(pass, fn, reported)
			}
		}
	}
	if internal {
		for _, f := range pass.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, isRoot := ctxRootCall(pass, call); isRoot && !reported[call.Pos()] {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(), "context.%s() in internal package %s: fresh context roots belong to process entry points; thread the run ctx here, or document the detached lifecycle with //rsvet:allow ctxflow", name, pass.Pkg.Path())
				}
				return true
			})
		}
	}
	return nil
}

// checkCtxHolder applies rules 1 and 2 inside one ctx-receiving
// function.
func checkCtxHolder(pass *analysis.Pass, fn *ast.FuncDecl, reported map[token.Pos]bool) {
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 1: minting a fresh root while holding a ctx.
		if name, isRoot := ctxRootCall(pass, call); isRoot && !reported[call.Pos()] {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(), "%s receives a context but calls context.%s(): the fresh root detaches this path from the run's cancellation; pass the ctx parameter", fn.Name.Name, name)
			return true
		}
		// Rule 2: calling the ctx-less variant of a ctx-capable callee.
		callee := calledFunc(pass, call)
		if callee == nil || takesCtx(callee) {
			return true
		}
		if variant := ctxVariant(callee); variant != nil && !reported[call.Pos()] {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(), "%s receives a context but calls %s, dropping it; use %s", fn.Name.Name, callee.Name(), variant.Name())
		}
		return true
	})
}

// hasNamedCtxParam reports whether fn declares a context.Context
// parameter it could propagate (named, not _).
func hasNamedCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxRootCall matches context.Background() / context.TODO().
func ctxRootCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// calledFunc resolves the call's static callee, if any.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// takesCtx reports whether the function signature accepts a
// context.Context anywhere.
func takesCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxVariant finds a ctx-capable sibling of a ctx-less callee:
// Name+"Context" or Name+"Ctx" in the same package scope (package
// functions) or on the same receiver type (methods).
func ctxVariant(fn *types.Func) *types.Func {
	sig, _ := fn.Type().(*types.Signature)
	names := []string{fn.Name() + "Context", fn.Name() + "Ctx"}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			for _, want := range names {
				if m.Name() == want && takesCtx(m) {
					return m
				}
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	for _, want := range names {
		if obj, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && takesCtx(obj) {
			return obj
		}
	}
	return nil
}
