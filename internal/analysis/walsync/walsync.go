// Package walsync checks the durability contract of WAL sinks
// (DESIGN.md §5.3): a call that returns success from AppendSync or
// Sync must not return before the record is durable — some fsync,
// group-commit acknowledgement, or equivalent barrier has to sit on
// every success path. PR 7 stated this contract in prose ("AppendSync
// returns once the record is durable"); walsync makes it checked.
//
// Targets are
//
//   - methods named AppendSync or Sync on any type that also declares
//     an Append method — the duck signature of a storage.WALSink
//     implementation, matched by shape so test doubles and future
//     sinks are covered without importing internal/storage;
//   - any function whose doc comment carries //rsvet:durable.
//
// An acknowledgement is, syntactically: a receive from a `chan error`
// (the group-commit done channel), a call to a method named Sync,
// Fsync or Wait (file sync, cond/waitgroup barrier), a call to a
// function that transitively contains one of those, or a function-
// level //rsvet:ack directive for barriers the syntax cannot see.
// Within a target, two return shapes are flagged:
//
//   - `return nil` (success) with no acknowledgement earlier in the
//     body, and
//   - `return f(...)` where f is neither ack-transitive nor an error
//     constructor — the success path is delegated to a function that
//     never becomes durable.
//
// Returns of plain variables (`return err`) are not judged: the
// group-commit implementation receives its ack into err first, and
// the static check cannot track values. Deliberately weaker sinks —
// the legacy write-through WAL whose crash model is process-level —
// carry //rsvet:allow walsync with that argument.
//
// The second clause guards the lane-mutex protocol the fault schedule
// depends on: a function carrying //rsvet:locks <expr> documents that
// it must run with that mutex held, so every caller must either
// acquire a matching mutex (a .Lock()/.RLock() on an expression with
// the same final component, earlier in source order) or carry a
// matching //rsvet:locks itself. Source order is an approximation —
// the check catches callers that never acquire the lane mutex at all,
// not release-order bugs.
package walsync

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"relser/internal/analysis"
	"relser/internal/analysis/callgraph"
)

// Analyzer is the WAL durability-contract check.
var Analyzer = &analysis.Analyzer{
	Name: "walsync",
	Doc:  "check that WAL sink success paths pass a durability barrier and //rsvet:locks callees run under their mutex",
	Run:  run,
}

// ackMethods are method names treated as durability barriers at a call
// site: file/sink syncs and blocking waits on conds or waitgroups.
var ackMethods = map[string]bool{"Sync": true, "Fsync": true, "Wait": true}

// errorCtors build error values; returning their result is a failure
// path, not an unacked success.
var errorCtors = map[callgraph.FuncID]bool{
	"errors.New": true, "fmt.Errorf": true, "errors.Join": true,
}

type finding struct {
	pkgPath string
	pos     token.Pos
	message string
}

func run(pass *analysis.Pass) error {
	if pass.Graph == nil {
		return fmt.Errorf("walsync: no call graph on pass")
	}
	findings := callgraph.Memo(pass.Graph, "walsync.findings", func() []finding {
		return compute(pass.Graph)
	})
	path := pass.Pkg.Path()
	for _, f := range findings {
		if f.pkgPath == path {
			pass.Reportf(f.pos, "%s", f.message)
		}
	}
	return nil
}

func compute(g *callgraph.Graph) []finding {
	var out []finding
	out = append(out, durabilityFindings(g)...)
	out = append(out, lockFindings(g)...)
	return out
}

// --- clause 1: success paths must pass a durability barrier ---

func durabilityFindings(g *callgraph.Graph) []finding {
	// acked: functions that syntactically contain a barrier, and
	// everything that calls one — "calling this function acks".
	acked := g.Transitive(func(n *callgraph.Node) bool {
		if _, ok := analysis.Directive(n.Doc(), "ack"); ok {
			return true
		}
		return containsAck(n)
	})

	// Receiver types with both Append and AppendSync nodes are WAL
	// sinks by shape.
	methods := map[string]map[string]callgraph.FuncID{} // recvKey -> name -> id
	for id, n := range g.Nodes {
		if n.Decl == nil || n.Decl.Recv == nil {
			continue
		}
		recv, name := splitMethod(id)
		if recv == "" {
			continue
		}
		if methods[recv] == nil {
			methods[recv] = map[string]callgraph.FuncID{}
		}
		methods[recv][name] = id
	}
	var targets []callgraph.FuncID
	for _, byName := range methods {
		if _, hasAppend := byName["Append"]; !hasAppend {
			continue
		}
		if _, hasSync := byName["AppendSync"]; !hasSync {
			continue
		}
		for _, name := range []string{"AppendSync", "Sync"} {
			if id, ok := byName[name]; ok {
				targets = append(targets, id)
			}
		}
	}
	for id, n := range g.Nodes {
		if _, ok := analysis.Directive(n.Doc(), "durable"); ok {
			targets = append(targets, id)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	var out []finding
	seen := map[callgraph.FuncID]bool{}
	for _, id := range targets {
		if seen[id] {
			continue
		}
		seen[id] = true
		n := g.Nodes[id]
		if _, ok := analysis.Directive(n.Doc(), "ack"); ok {
			continue
		}
		out = append(out, checkTarget(g, n, acked)...)
	}
	return out
}

// containsAck reports whether the node's own body has a syntactic
// durability barrier: a receive from a chan error, or a call to an
// ack-named method.
func containsAck(n *callgraph.Node) bool {
	found := false
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		if isAckExpr(n.Pkg.TypesInfo, node) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isAckExpr classifies one AST node as a barrier.
func isAckExpr(info *types.Info, node ast.Node) bool {
	switch e := node.(type) {
	case *ast.UnaryExpr:
		if e.Op != token.ARROW {
			return false
		}
		tv, ok := info.Types[e.X]
		if !ok || tv.Type == nil {
			return false
		}
		ch, ok := tv.Type.Underlying().(*types.Chan)
		return ok && ch.Elem().String() == "error"
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		return ok && ackMethods[sel.Sel.Name]
	}
	return false
}

// checkTarget walks one target body, flagging success returns with no
// barrier earlier in source order.
func checkTarget(g *callgraph.Graph, n *callgraph.Node, acked map[callgraph.FuncID]bool) []finding {
	var ackPositions []token.Pos
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if isAckExpr(n.Pkg.TypesInfo, node) {
			ackPositions = append(ackPositions, node.Pos())
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if id, ok := g.CalleeOf(n.Pkg, call); ok && acked[id] {
				ackPositions = append(ackPositions, call.Pos())
			}
		}
		return true
	})
	ackBefore := func(pos token.Pos) bool {
		for _, p := range ackPositions {
			if p < pos {
				return true
			}
		}
		return false
	}

	var out []finding
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := node.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		last := ast.Unparen(ret.Results[len(ret.Results)-1])
		switch e := last.(type) {
		case *ast.Ident:
			if e.Name == "nil" && !ackBefore(ret.Pos()) {
				out = append(out, finding{
					pkgPath: n.Pkg.PkgPath, pos: ret.Pos(),
					message: fmt.Sprintf("%s returns success with no durability barrier on this path: an fsync or group-commit ack must precede it (or document the weaker crash model with //rsvet:allow walsync)", n.Name()),
				})
			}
		case *ast.CallExpr:
			id, resolved := g.CalleeOf(n.Pkg, e)
			if !resolved || acked[id] || errorCtors[id] {
				return true
			}
			if !ackBefore(ret.Pos()) {
				out = append(out, finding{
					pkgPath: n.Pkg.PkgPath, pos: ret.Pos(),
					message: fmt.Sprintf("%s delegates its success path to %s, which reaches no fsync or group-commit ack", n.Name(), shortID(id)),
				})
			}
		}
		return true
	})
	return out
}

// --- clause 2: //rsvet:locks callees run under their mutex ---

func lockFindings(g *callgraph.Graph) []finding {
	type contract struct {
		id   callgraph.FuncID
		want string // final component of the lock expression
		expr string // as written in the directive
	}
	var contracts []contract
	for id, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		for _, expr := range analysis.LocksDirective(n.Decl) {
			contracts = append(contracts, contract{id: id, want: finalComponent(expr), expr: expr})
		}
	}
	sort.Slice(contracts, func(i, j int) bool { return contracts[i].id < contracts[j].id })

	var out []finding
	for _, c := range contracts {
		for _, callerID := range g.Callers(c.id) {
			caller := g.Nodes[callerID]
			if caller == nil {
				continue
			}
			if callerHolds(caller, c.want) {
				continue
			}
			for _, e := range caller.Calls {
				if e.Callee != c.id {
					continue
				}
				if lockAcquiredBefore(caller, c.want, e.Pos) {
					continue
				}
				out = append(out, finding{
					pkgPath: caller.Pkg.PkgPath, pos: e.Pos,
					message: fmt.Sprintf("call to %s requires %s held (//rsvet:locks), but %s neither locks a matching mutex before the call nor declares //rsvet:locks %s",
						shortID(c.id), c.expr, caller.Name(), c.expr),
				})
			}
		}
	}
	return out
}

// callerHolds reports whether the caller declares the same lock
// contract, propagating the obligation to its own callers.
func callerHolds(n *callgraph.Node, want string) bool {
	if n.Decl == nil {
		return false
	}
	for _, expr := range analysis.LocksDirective(n.Decl) {
		if finalComponent(expr) == want {
			return true
		}
	}
	return false
}

// lockAcquiredBefore reports whether the caller calls .Lock()/.RLock()
// on an expression whose final component matches, earlier in source
// order than pos.
func lockAcquiredBefore(n *callgraph.Node, want string, pos token.Pos) bool {
	held := false
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if held {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if finalComponent(exprString(sel.X)) == want {
			held = true
		}
		return true
	})
	return held
}

// exprString renders the receiver of a Lock call ("sh.mu", "w.lanes[i].mu").
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	}
	return ""
}

func finalComponent(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// splitMethod decomposes "pkg.(Recv).Name" into (pkg.(Recv), Name);
// recv is "" for non-methods and literals.
func splitMethod(id callgraph.FuncID) (recv, name string) {
	s := string(id)
	close := strings.LastIndexByte(s, ')')
	if close < 0 || close+1 >= len(s) || s[close+1] != '.' {
		return "", ""
	}
	return s[:close+1], s[close+2:]
}

func shortID(id callgraph.FuncID) string {
	s := string(id)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
