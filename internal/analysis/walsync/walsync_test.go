package walsync_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/walsync"
)

func TestWalsync(t *testing.T) {
	analysistest.Run(t, walsync.Analyzer, "../testdata/src/walsync")
}
