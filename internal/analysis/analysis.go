// Package analysis is a minimal, self-contained reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The module deliberately has no third-party dependencies, so the real
// x/tools framework is not available; this package keeps the same
// shape (Analyzer/Pass/Diagnostic, a driver in internal/analysis/checker,
// an analysistest-style harness in internal/analysis/analysistest) so
// the analyzers could be ported to a x/tools multichecker by swapping
// imports if the dependency ever lands.
//
// Two comment directives are understood by the checker driver:
//
//	//rsvet:allow <analyzer>[,<analyzer>...] [-- reason]
//
// on (or immediately above) a line suppresses that line's diagnostics
// from the named analyzers — the escape hatch for deliberate,
// documented violations; and
//
//	//rsvet:locks <mutex-expr>
//
// in a function's doc comment declares that the function is called
// with the named stripe mutex held, extending the intraprocedural lock
// tracking of the stripelock analyzer across that call boundary.
//
// Three more doc-comment directives feed the interprocedural contract
// analyzers (see internal/analysis/callgraph):
//
//	//rsvet:deterministic  — the function is a detlint root: no wall
//	                         clock, unseeded randomness or map-order
//	                         dependence may be reachable from it;
//	//rsvet:durable        — the function is a walsync root: success
//	                         returns require an fsync/group-commit ack;
//	//rsvet:ack            — the function counts as a durability ack
//	                         (it blocks until the write is durable).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"relser/internal/analysis/callgraph"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rsvet:allow suppressions. By convention a short lowercase word.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Graph is the interprocedural call graph over every package of
	// the run (not just this pass's). Program-wide analyzers derive
	// their facts from it once (callgraph.Memo) and report, per pass,
	// only the findings positioned in this pass's package.
	Graph *callgraph.Graph
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directive returns the arguments of every "//rsvet:<name>" line in
// the comment group (an empty-but-present directive yields one empty
// slice entry's worth of presence: ok is true with no args).
func Directive(doc *ast.CommentGroup, name string) (args []string, ok bool) {
	if doc == nil {
		return nil, false
	}
	prefix := "//rsvet:" + name
	for _, c := range doc.List {
		text, found := strings.CutPrefix(c.Text, prefix)
		if !found || (text != "" && text[0] != ' ' && text[0] != '\t') {
			continue
		}
		ok = true
		args = append(args, strings.Fields(text)...)
	}
	return args, ok
}

// LocksDirective returns the mutex expressions named by rsvet:locks
// lines in the function's doc comment: the caller's contract that the
// function only runs with those stripe mutexes held, which extends the
// stripelock analyzer's intraprocedural tracking across the call
// boundary.
func LocksDirective(fn *ast.FuncDecl) []string {
	if fn == nil {
		return nil
	}
	args, _ := Directive(fn.Doc, "locks")
	return args
}
