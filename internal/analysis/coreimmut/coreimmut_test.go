package coreimmut_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/coreimmut"
)

func TestCoreimmut(t *testing.T) {
	analysistest.Run(t, coreimmut.Analyzer, "../testdata/src/coreimmut")
}
