// Package coreimmut enforces the immutability contract of the model
// layer: core.Transaction, core.TxnSet, core.Spec, core.Schedule and
// core.Op values are frozen after construction (TxnSet.GlobalIndex,
// the RSG builder and every scheduler cache derived state that
// silently desynchronizes if a program is edited in place). Outside
// internal/core itself, writing through a field of a frozen value —
// t.Ops = append(...), t.Ops[0].Object = "y", op.Seq = 3 — is
// reported; derivation must go through the constructing package's API
// (Clone, Refine, Coarsen, ...).
//
// Whole-value assignment (t = other), element writes into local
// slices of core types (ops[k] = core.R("x")) and core.Instance —
// a deliberately mutable bundle that parse.go and the figure
// catalogue build incrementally — are all fine.
package coreimmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"relser/internal/analysis"
)

// Analyzer is the core-immutability check.
var Analyzer = &analysis.Analyzer{
	Name: "coreimmut",
	Doc:  "check that frozen core model values are not mutated outside internal/core",
	Run:  run,
}

const corePath = "relser/internal/core"

// frozen lists the core named types whose fields must not be written
// outside their package. Instance is intentionally absent.
var frozen = map[string]bool{
	"Transaction": true,
	"TxnSet":      true,
	"Spec":        true,
	"Schedule":    true,
	"Op":          true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == corePath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if name, ok := frozenFieldWrite(pass, lhs); ok {
						pass.Reportf(lhs.Pos(),
							"mutation of %s outside internal/core; model values are frozen after construction", name)
					}
				}
			case *ast.IncDecStmt:
				if name, ok := frozenFieldWrite(pass, n.X); ok {
					pass.Reportf(n.X.Pos(),
						"mutation of %s outside internal/core; model values are frozen after construction", name)
				}
			case *ast.UnaryExpr:
				// Taking the address of a frozen field hands out a
				// mutable alias that defeats the contract.
				if n.Op == token.AND {
					if name, ok := frozenFieldWrite(pass, n.X); ok {
						pass.Reportf(n.Pos(),
							"address of %s field taken outside internal/core; the alias defeats the immutability contract", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// frozenFieldWrite reports whether the expression writes through (or
// aliases) a field selected from a frozen core value: some step of
// the selector/index chain is x.f with x of a frozen named core type.
func frozenFieldWrite(pass *analysis.Pass, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if name, ok := frozenNamed(pass, x.X); ok {
				return name, true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// frozenNamed reports whether the expression's type (after pointer
// indirection) is one of the frozen named types of internal/core.
func frozenNamed(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != corePath || !frozen[obj.Name()] {
		return "", false
	}
	return "core." + obj.Name(), true
}
