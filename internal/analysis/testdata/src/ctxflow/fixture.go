// Package internalfix exercises the ctxflow analyzer; the package
// name contains "internal" so the fresh-root rule applies.
package internalfix

import "context"

func helper(ctx context.Context) error { _ = ctx; return nil }

// fetch has a ctx-capable sibling below.
func fetch(url string) error { _ = url; return nil }

func fetchContext(ctx context.Context, url string) error { _ = ctx; _ = url; return nil }

type client struct{}

func (c *client) Do() error { return nil }

func (c *client) DoContext(ctx context.Context) error { _ = ctx; return nil }

// detached receives a ctx but mints a fresh root for the call below.
func detached(ctx context.Context) error {
	return helper(context.Background()) // want `receives a context but calls context.Background`
}

// dropped receives a ctx but calls the ctx-less variants.
func dropped(ctx context.Context, c *client) error {
	if err := fetch("x"); err != nil { // want `dropping it; use fetchContext`
		return err
	}
	return c.Do() // want `dropping it; use DoContext`
}

// threaded propagates properly: no findings.
func threaded(ctx context.Context, c *client) error {
	if err := fetchContext(ctx, "x"); err != nil {
		return err
	}
	return c.DoContext(ctx)
}

// rootless has no ctx to thread, but the package is internal: fresh
// roots still need a documented reason.
func rootless() error {
	ctx := context.Background() // want `fresh context roots belong to process entry points`
	return helper(ctx)
}

// server owns its lifecycle; the root is deliberate and documented.
func server() error {
	//rsvet:allow ctxflow -- server owns its lifecycle; canceled by Close, not by a run
	ctx := context.Background()
	return helper(ctx)
}

// blind opts out of propagation rules with an unnamed ctx parameter;
// calling the ctx-less variant is then not a finding.
func blind(_ context.Context) error {
	return fetch("y")
}
