// Package fixture exercises the coreimmut analyzer.
package fixture

import (
	"relser/internal/core"
)

func constructionOK() *core.Transaction {
	ops := make([]core.Op, 2)
	ops[0] = core.R("x") // fine: filling a local slice is construction
	ops[1] = core.W("x")
	return core.T(1, ops...)
}

func wholeValueOK(t, other *core.Transaction) *core.Transaction {
	t = other // fine: rebinding the variable mutates nothing
	return t
}

func instanceBundleOK(inst *core.Instance, s *core.Schedule) {
	inst.Schedules["extra"] = s // fine: Instance is a mutable bundle
	inst.Names = append(inst.Names, "extra")
}

func fieldWrites(t *core.Transaction, sp *core.Spec) {
	t.Ops = nil                        // want `mutation of core.Transaction`
	t.Ops = append(t.Ops, core.R("y")) // want `mutation of core.Transaction`
	t.Ops[0] = core.W("z")             // want `mutation of core.Transaction`
	t.Ops[0].Object = "q"              // want `mutation of core.Op`
	t.ID++                             // want `mutation of core.Transaction`
}

func opFieldWrite(o core.Op) core.Op {
	o.Seq = 7 // want `mutation of core.Op`
	return o
}

func aliasing(t *core.Transaction) *core.Op {
	return &t.Ops[0] // want `address of core.Transaction field`
}
