// Package fixture exercises the registrydrift analyzer.
package fixture

import (
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/record"
	"relser/internal/trace"
)

func points(in *fault.Injector) {
	in.Fire(fault.ShardStall)           // fine: registry constant
	in.Fire(fault.Point("shard.stall")) // fine: literal in registry
	in.Fire(fault.Point("shard.stal"))  // want `not in the fault registry`
	var p fault.Point = "no.such.point" // want `not in the fault registry`
	_ = p
}

func specs() {
	_, _ = fault.ParseSpec("shard.stall:0.5")  // fine
	_, _ = fault.ParseSpec("shard.stall=0.5")  // want `does not parse`
	_ = fault.MustParseSpec("bogus.point:1.0") // want `does not parse`
}

func kinds() {
	_ = trace.KindCommit          // fine: registry constant
	_ = trace.Kind("commit")      // fine: literal in registry
	_ = trace.Kind("comitted")    // want `not a registered event kind`
	var k trace.Kind = "beginnng" // want `not a registered event kind`
	_ = k
}

func stages() {
	_ = record.StageCommit           // fine: registry constant
	_ = record.Stage("commit")       // fine: literal in registry
	_ = record.Stage("comit")        // want `not a registered stage`
	var s record.Stage = "recovered" // want `not a registered stage`
	_ = record.StageEvent{Stage: "abort"}
	_ = record.StageEvent{Stage: "abrt"} // want `not a registered stage`
	_ = s
}

func statuses() {
	_ = obs.StatusAborted               // fine: registry constant
	_ = obs.SpanStatus("committed")     // fine: literal in registry
	_ = obs.SpanStatus("commited")      // want `not a registered terminal status`
	var st obs.SpanStatus = "in-flight" // want `not a registered terminal status`
	_ = st
}

func keys(reg *metrics.Registry) {
	_ = reg.Counter("txn.committed")     // fine: canonical
	_ = reg.Counter("txn.comitted")      // want `not in the canonical key registry`
	_ = reg.Gauge("txn.actve")           // want `not in the canonical key registry`
	_ = reg.Histogram("txn.shard03.lat") // fine: registered dynamic prefix
	name := "txn.elsewhere"
	_ = reg.Counter(name) // fine: not a constant, run-time concern
}
