// Package fixture is a workload whose helper-bundled transfer step
// blocks static certification: rsvet -infer must report the concrete
// cycle witness instead of a certificate.
package fixture

import "relser/internal/core"

// debitCredit packages the whole transfer as one step, so the
// synthesized Atomicity(T1, T2) keeps all four operations in a single
// atomic unit.
func debitCredit(from, to string) []core.Op {
	return []core.Op{core.R(from), core.W(from), core.R(to), core.W(to)}
}

// touch returns one op through a helper: still an inline step.
func touch(obj string) core.Op { return core.R(obj) }

func workload() []*core.Transaction {
	return []*core.Transaction{
		core.T(1, debitCredit("acct_a", "acct_b")...),
		core.T(2, core.R("acct_a"), core.W("acct_a")),
		core.T(3, touch("log"), core.W("log")),
	}
}
