// Package fixture exercises the hookshape analyzer.
package fixture

import (
	"sync"
	"time"

	"relser/internal/engine"
)

// install wires hooks in the shapes the analyzer understands: a
// composite literal, field assignments, and a combinator call.
func install(core *engine.Core) engine.Hooks {
	var mu sync.Mutex
	counts := map[string]int{}
	h := engine.Hooks{
		// Leaf mutex plus map write: the sanctioned observer pattern.
		Admit: func(st *engine.Instance) {
			mu.Lock()
			counts["admit"]++
			mu.Unlock()
		},
		Commit: func(st *engine.Instance) { // want `hook Commit may block`
			time.Sleep(time.Millisecond)
		},
	}
	h.Abort = func(st *engine.Instance) { // want `hook Abort calls back into engine/driver`
		core.AbortAll("observer", 0)
	}
	return h
}

// flushAll is the interprocedural blocking step: the hook below only
// calls it.
func flushAll(wg *sync.WaitGroup) { wg.Wait() }

func installRecover(wg *sync.WaitGroup) engine.Hooks {
	h := engine.Hooks{}
	h.Recover = func() { // want `hook Recover may block`
		flushAll(wg)
	}
	return h
}

// tap goes through OnStages; the argument is the hook.
func tap(done chan struct{}) engine.Hooks {
	return engine.OnStages(func(s engine.Stage, st *engine.Instance) { // want `hook OnStages may block`
		done <- struct{}{}
	})
}

// chain mirrors the obs/record combinator: function-valued arguments
// of a call assigned into a hook field are themselves hook roots.
func chain(first, then func(*engine.Instance)) func(*engine.Instance) {
	if first == nil {
		return then
	}
	if then == nil {
		return first
	}
	return func(st *engine.Instance) {
		first(st)
		then(st)
	}
}

func wrap(prev engine.Hooks) engine.Hooks {
	var mu sync.Mutex
	n := 0
	h := prev
	h.Issue = chain(func(st *engine.Instance) {
		mu.Lock()
		n++
		mu.Unlock()
	}, prev.Issue)
	h.Decide = chain(func(st *engine.Instance) { // want `hook Decide may block`
		ch := make(chan int)
		<-ch
	}, prev.Decide)
	return h
}

// gated parks deliberately; the exception is documented.
func gated(gate chan struct{}) engine.Hooks {
	h := engine.Hooks{}
	//rsvet:allow hookshape -- test-only gate, a single worker drives the run
	h.Apply = func(st *engine.Instance) { <-gate }
	return h
}
