// Package fixture exercises the terminalops analyzer.
package fixture

import (
	"relser/internal/core"
	"relser/internal/sched"
)

func afterCommit(p *sched.SGT, id int64, req sched.OpRequest) {
	p.Commit(id)
	_ = p.Request(sched.OpRequest{Instance: id}) // want `Request for instance id after terminal Commit`
	_ = p.CanCommit(id)                          // want `CanCommit for instance id after terminal Commit`
	p.Abort(id)                                  // want `Abort for instance id after terminal Commit`
}

func afterAbort(p *sched.SGT, id int64) {
	p.Abort(id)
	p.Commit(id) // want `Commit for instance id after terminal Abort`
}

func reAdmitOK(p *sched.SGT, id int64, t *core.Transaction) {
	p.Commit(id)
	p.Begin(id, t)
	_ = p.Request(sched.OpRequest{Instance: id}) // fine: re-admitted
	p.Commit(id)
}

func distinctInstancesOK(p *sched.SGT, a, b int64) {
	p.Commit(a)
	_ = p.CanCommit(b) // fine: different instance
}

func distinctProtocolsOK(p, q *sched.SGT, id int64) {
	p.Commit(id)
	_ = q.CanCommit(id) // fine: different protocol value
}

func branchesIsolated(p *sched.SGT, id int64, cond bool) {
	if cond {
		p.Commit(id)
	} else {
		p.Abort(id)
	}
	// A terminal call inside one branch does not poison code after the
	// if statement in this conservative intraprocedural analysis.
	_ = p.CanCommit(id)
}

func branchCarries(p *sched.SGT, id int64, cond bool) {
	p.Commit(id)
	if cond {
		p.Abort(id) // want `Abort for instance id after terminal Commit`
	}
}

func loopBodyFresh(p *sched.SGT, ids []int64) {
	for _, id := range ids {
		p.Commit(id)
	}
}
