// Package fixture exercises the walsync analyzer.
package fixture

import (
	"errors"
	"os"
	"sync"
)

type record struct{ payload []byte }

// badSink has the WAL-sink shape (Append + AppendSync) but its sync
// paths never reach a barrier.
type badSink struct {
	mu  sync.Mutex
	buf []byte
}

func (s *badSink) Append(rec record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, rec.payload...)
	return nil
}

func (s *badSink) AppendSync(rec record) error {
	return s.Append(rec) // want `delegates its success path`
}

func (s *badSink) Sync() error {
	return nil // want `returns success with no durability barrier`
}

// goodSink acks through the group-commit done channel and an fsync.
type goodSink struct {
	f    *os.File
	done chan error
}

func (s *goodSink) Append(rec record) error {
	_, err := s.f.Write(rec.payload)
	return err
}

func (s *goodSink) AppendSync(rec record) error {
	if err := s.Append(rec); err != nil {
		return err
	}
	if err := <-s.done; err != nil {
		return err
	}
	return nil
}

func (s *goodSink) Sync() error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	return nil
}

// flushed is ack-transitive: calling it counts as a barrier.
func flushed(f *os.File) error { return f.Sync() }

// viaHelper delegates to an ack-transitive helper: fine.
//
//rsvet:durable
func viaHelper(f *os.File) error {
	return flushed(f)
}

// failurePath returns a constructed error: a failure, not an unacked
// success.
//
//rsvet:durable
func failurePath() error {
	return errors.New("wal closed")
}

// unacked claims durability but never flushes.
//
//rsvet:durable
func unacked(f *os.File, rec record) error {
	if _, err := f.Write(rec.payload); err != nil {
		return err
	}
	return nil // want `returns success with no durability barrier`
}

// writeThrough documents a deliberately weaker crash model.
type writeThrough struct{ buf []byte }

func (s *writeThrough) Append(rec record) error {
	s.buf = append(s.buf, rec.payload...)
	return nil
}

func (s *writeThrough) AppendSync(rec record) error {
	//rsvet:allow walsync -- process-level crash model: Append is as durable as this sink gets
	return s.Append(rec)
}

// --- clause 2: //rsvet:locks callees ---

type shard struct {
	mu    sync.Mutex
	dirty int
}

// bump must run with the shard mutex held.
//
//rsvet:locks sh.mu
func bump(sh *shard) { sh.dirty++ }

// lockedCaller acquires the matching mutex first.
func lockedCaller(sh *shard) {
	sh.mu.Lock()
	bump(sh)
	sh.mu.Unlock()
}

// contractCaller propagates the obligation instead of locking.
//
//rsvet:locks sh.mu
func contractCaller(sh *shard) {
	bump(sh)
	bump(sh)
}

// bareCaller calls the annotated helper with no lock in sight.
func bareCaller(sh *shard) {
	bump(sh) // want `requires sh.mu held`
}
