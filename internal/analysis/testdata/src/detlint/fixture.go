// Package fixture exercises the detlint analyzer.
package fixture

import (
	"math/rand"
	"time"
)

// decide is a deterministic root; its transitive call tree must stay
// pinned by the run seed.
//
//rsvet:deterministic
func decide(scores map[string]int) int {
	best := 0
	for _, s := range scores { // want `map iteration in deterministic root`
		if s > best {
			best = s
		}
	}
	return best + backoff(3)
}

// backoff is reached from decide: its wall-clock read and global rand
// draw are flagged even though backoff itself carries no directive —
// the interprocedural half of the check.
func backoff(n int) int {
	if time.Now().Unix()%2 == 0 { // want `time.Now in deterministic section`
		return n
	}
	return rand.Intn(n) // want `rand.Intn in deterministic section`
}

// jitterOK draws from a seeded instance: rand.New/NewSource construct
// the seeded sources the engine is supposed to use, and methods on a
// *rand.Rand are exempt.
//
//rsvet:deterministic
func jitterOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// audit is not a root: the same sources are fine outside the
// deterministic sections.
func audit() int64 { return time.Now().Unix() }

// folded documents a deliberate order-insensitive map fold.
//
//rsvet:deterministic
func folded(m map[string]int) int {
	total := 0
	//rsvet:allow detlint -- order-insensitive sum
	for _, v := range m {
		total += v
	}
	return total
}
