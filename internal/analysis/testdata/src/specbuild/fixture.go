// Package fixture exercises the specbuild analyzer.
package fixture

import (
	"relser/internal/core"
)

func coveringOK() {
	t1 := core.T(1, core.R("x"), core.W("x"), core.W("z"), core.R("y"))
	t2 := core.T(2, core.R("y"), core.W("y"), core.R("x"))
	ts := core.MustTxnSet(t1, t2)
	sp := core.NewSpec(ts)
	_ = sp.SetUnits(1, 2, 2, 2) // fine: 2+2 covers the 4 ops of T1
	_ = sp.CutAfter(2, 1, 0)    // fine
}

func badPartitions() {
	t1 := core.T(1, core.R("x"), core.W("x"), core.W("z"), core.R("y"))
	t2 := core.T(2, core.R("y"), core.W("y"), core.R("x"))
	ts := core.MustTxnSet(t1, t2)
	sp := core.NewSpec(ts)
	_ = sp.SetUnits(1, 2, 2, 1)    // want `does not cover the transaction`
	_ = sp.SetUnits(1, 2, 3, 2)    // want `units overlap or overrun`
	_ = sp.SetUnits(1, 2, 2, 0, 2) // want `non-positive length`
	_ = sp.SetUnits(2, 1, 4, -1)   // want `non-positive length`
}

func badBreakpoints() {
	t1 := core.T(1, core.R("x"), core.W("x"), core.W("z"), core.R("y"))
	t2 := core.T(2, core.R("y"), core.W("y"), core.R("x"))
	ts := core.MustTxnSet(t1, t2)
	sp := core.NewSpec(ts)
	_ = sp.CutAfter(1, 2, 7)  // want `out of range for T1`
	_ = sp.CutAfter(1, 2, -1) // want `out of range`
	_ = sp.CutAfter(2, 1, 2)  // want `no-op`
}

func unknownLengthsSkipped(n int, lens []int) {
	t1 := core.T(1, core.R("x"), core.W("x"))
	ts := core.MustTxnSet(t1)
	sp := core.NewSpec(ts)
	_ = sp.CutAfter(1, 1, n)                // fine: seq not constant
	_ = sp.SetUnits(1, 1, lens...)          // fine: spread, lengths unknown
	_ = sp.SetUnits(core.TxnID(n), 1, 9, 9) // fine: txn id not constant
}
