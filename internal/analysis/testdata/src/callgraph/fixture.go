// Package fixture is a small call web for the callgraph tests.
package fixture

func a() { b() }

func b() {
	c()
	defer func() { d() }()
}

func c() {}

func d() {}

func e() {
	go func() { c() }()
}
