// Package fixture exercises the stripelock analyzer.
package fixture

import (
	"sync"

	"relser/internal/fault"
)

type fooStripe struct {
	mu   sync.Mutex
	cond *sync.Cond
}

type plain struct {
	mu sync.Mutex
}

type table struct {
	stripes []fooStripe
	other   *fooStripe
	in      *fault.Injector
	ch      chan int
}

func (t *table) ascendingConstOK() {
	t.stripes[0].mu.Lock()
	t.stripes[2].mu.Lock()
	t.stripes[2].mu.Unlock()
	t.stripes[0].mu.Unlock()
}

func (t *table) descendingConst() {
	t.stripes[2].mu.Lock()
	t.stripes[0].mu.Lock() // want `ascending index order`
	t.stripes[0].mu.Unlock()
	t.stripes[2].mu.Unlock()
}

func (t *table) unprovableOrder(i, j int) {
	t.stripes[i].mu.Lock()
	t.stripes[j].mu.Lock() // want `cannot be proven ascending`
	t.stripes[j].mu.Unlock()
	t.stripes[i].mu.Unlock()
}

func (t *table) selfDeadlock() {
	t.other.mu.Lock()
	t.other.mu.Lock() // want `self-deadlock`
	t.other.mu.Unlock()
}

func (t *table) distinctStripes() {
	t.stripes[0].mu.Lock()
	t.other.mu.Lock() // want `provable ascending order`
	t.other.mu.Unlock()
	t.stripes[0].mu.Unlock()
}

func (t *table) sendUnderStripe(v int) {
	t.other.mu.Lock()
	t.ch <- v // want `channel send`
	t.other.mu.Unlock()
	t.ch <- v // fine: stripe released
}

func (t *table) ownCondOK(sh *fooStripe) {
	sh.mu.Lock()
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

func (t *table) foreignCond(sh *fooStripe) {
	sh.mu.Lock()
	t.other.cond.Broadcast() // want `foreign condition variable`
	sh.mu.Unlock()
}

func (t *table) faultUnderStripe(sh *fooStripe) {
	sh.mu.Lock()
	if t.in.Fire(fault.ShardStall) { // want `fault injector Fire`
	}
	sh.mu.Unlock()
	t.in.Fire(fault.ShardStall) // fine: stripe released
}

func (t *table) suppressed(sh *fooStripe) {
	sh.mu.Lock()
	//rsvet:allow stripelock -- deliberate, fixture proves suppression works
	t.in.Wedge()
	sh.mu.Unlock()
}

// calledWithLockHeld has the locks directive: the body is analyzed as
// if sh.mu were held on entry.
//
//rsvet:locks sh.mu
func (t *table) calledWithLockHeld(sh *fooStripe) {
	t.in.Wedge() // want `fault injector Wedge`
	sh.mu.Unlock()
	t.in.Wedge() // fine: directive lock released above
}

// plainMutexIgnored is not a stripe type: no findings.
func (t *table) plainMutexIgnored(p *plain, v int) {
	p.mu.Lock()
	t.ch <- v
	p.mu.Unlock()
}
