package registrydrift_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/registrydrift"
)

func TestRegistrydrift(t *testing.T) {
	analysistest.Run(t, registrydrift.Analyzer, "../testdata/src/registrydrift")
}
