// Package registrydrift is a string-typo detector for the three
// name registries the runtime keys its behavior on:
//
//   - fault.Point literals must name a registered injection point
//     (fault.Points()); fault.ParseSpec / MustParseSpec string
//     arguments must additionally parse as a full spec;
//   - trace.Kind literals must name a registered event kind
//     (trace.Kinds());
//   - metric keys passed literally to Registry.Counter / Gauge /
//     Histogram must be canonical (metrics.Keys()) or carry a
//     registered dynamic prefix;
//   - record.Stage literals must name a registered recording stage
//     (record.Stages());
//   - obs.SpanStatus literals must name a registered terminal status
//     (obs.SpanStatuses()).
//
// A typo in any of these strings is silent at run time — the injector
// never fires, the trace filter matches nothing, the time series stays
// empty — so the analyzer turns it into a build-gate failure. The
// check is type-directed: any string literal whose type-checked type
// is fault.Point or trace.Kind is validated, wherever it appears
// (conversions, assignments, composite literals, comparisons, call
// arguments).
package registrydrift

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"relser/internal/analysis"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/record"
	"relser/internal/trace"
)

// Analyzer is the registry-drift check.
var Analyzer = &analysis.Analyzer{
	Name: "registrydrift",
	Doc:  "check fault.Point, trace.Kind, record.Stage, obs.SpanStatus and metrics-key string literals against their registries",
	Run:  run,
}

const (
	faultPath   = "relser/internal/fault"
	tracePath   = "relser/internal/trace"
	metricsPath = "relser/internal/metrics"
	recordPath  = "relser/internal/record"
	obsPath     = "relser/internal/obs"
)

var (
	knownPoints = func() map[string]bool {
		m := map[string]bool{}
		for _, p := range fault.Points() {
			m[string(p)] = true
		}
		return m
	}()
	knownKinds = func() map[string]bool {
		m := map[string]bool{}
		for _, k := range trace.Kinds() {
			m[string(k)] = true
		}
		return m
	}()
	knownStages = func() map[string]bool {
		m := map[string]bool{}
		for _, s := range record.Stages() {
			m[string(s)] = true
		}
		return m
	}()
	knownStatuses = func() map[string]bool {
		m := map[string]bool{}
		for _, s := range obs.SpanStatuses() {
			m[string(s)] = true
		}
		return m
	}()
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				checkTypedLiteral(pass, n)
			case *ast.CallExpr:
				checkSpecCall(pass, n)
				checkMetricsCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkTypedLiteral validates a string literal whose type resolved to
// fault.Point or trace.Kind. The type checker records the contextual
// type of untyped constants, so this covers conversions, assignments,
// call arguments, composite literals, map keys and comparisons alike.
func checkTypedLiteral(pass *analysis.Pass, lit *ast.BasicLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	val := constant.StringVal(tv.Value)
	switch {
	case named.Obj().Pkg().Path() == faultPath && named.Obj().Name() == "Point":
		if !knownPoints[val] {
			pass.Reportf(lit.Pos(),
				"fault point %q is not in the fault registry (known: %s)",
				val, joinPoints())
		}
	case named.Obj().Pkg().Path() == tracePath && named.Obj().Name() == "Kind":
		if !knownKinds[val] {
			pass.Reportf(lit.Pos(), "trace kind %q is not a registered event kind", val)
		}
	case named.Obj().Pkg().Path() == recordPath && named.Obj().Name() == "Stage":
		if !knownStages[val] {
			pass.Reportf(lit.Pos(), "recording stage %q is not a registered stage (record.Stages)", val)
		}
	case named.Obj().Pkg().Path() == obsPath && named.Obj().Name() == "SpanStatus":
		if !knownStatuses[val] {
			pass.Reportf(lit.Pos(), "span status %q is not a registered terminal status (obs.SpanStatuses)", val)
		}
	}
}

// checkSpecCall validates literal arguments of fault.ParseSpec and
// fault.MustParseSpec by actually parsing them.
func checkSpecCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if sel.Sel.Name != "ParseSpec" && sel.Sel.Name != "MustParseSpec" {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != faultPath {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	val, ok := stringConst(pass, call.Args[0])
	if !ok {
		return
	}
	if _, err := fault.ParseSpec(val); err != nil {
		pass.Reportf(call.Args[0].Pos(), "fault spec %q does not parse: %v", val, err)
	}
}

// checkMetricsCall validates literal keys passed to the metrics
// registry's get-or-create constructors.
func checkMetricsCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPath {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || len(call.Args) != 1 {
		return
	}
	val, ok := stringConst(pass, call.Args[0])
	if !ok {
		return
	}
	if !metrics.IsKnownKey(val) {
		pass.Reportf(call.Args[0].Pos(),
			"metric key %q is not in the canonical key registry (internal/metrics/keys.go)", val)
	}
}

func stringConst(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func joinPoints() string {
	names := make([]string, 0, len(knownPoints))
	for _, p := range fault.Points() {
		names = append(names, string(p))
	}
	return strings.Join(names, ", ")
}
