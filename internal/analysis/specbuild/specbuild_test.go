package specbuild_test

import (
	"testing"

	"relser/internal/analysis/analysistest"
	"relser/internal/analysis/specbuild"
)

func TestSpecbuild(t *testing.T) {
	analysistest.Run(t, specbuild.Analyzer, "../testdata/src/specbuild")
}
