// Package specbuild statically validates relative-atomicity spec
// construction: calls to core.Spec's SetUnits / CutAfter (directly or
// through the relser facade) whose arguments are constant are checked
// against the transaction programs built in the same function, so a
// partition that would only fail at run time — overlapping or
// non-covering unit lengths, an out-of-range or no-op breakpoint —
// is reported at build time.
//
// Transaction lengths are recovered intraprocedurally from
// core.T(id, ops...) calls: the variadic operation count is the
// program length. Spec calls whose transaction id or lengths are not
// compile-time constants are skipped (the run-time validation in
// internal/core still covers them).
package specbuild

import (
	"go/ast"
	"go/constant"
	"go/types"

	"relser/internal/analysis"
)

// Analyzer is the spec-construction check.
var Analyzer = &analysis.Analyzer{
	Name: "specbuild",
	Doc:  "check constant core.Spec partitions for overlap, coverage and breakpoint range",
	Run:  run,
}

// corePaths are the packages whose T / SetUnits / CutAfter carry spec
// semantics: the core implementation and the root facade re-exporting
// it.
var corePaths = map[string]bool{
	"relser/internal/core": true,
	"relser":               true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	txnLen := map[int64]int{} // constant txn id -> program length
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isCoreName(pass, sel.Sel) {
			return true
		}
		switch sel.Sel.Name {
		case "T":
			if call.Ellipsis.IsValid() || len(call.Args) < 1 {
				return true
			}
			if id, ok := intConst(pass, call.Args[0]); ok {
				txnLen[id] = len(call.Args) - 1
			}
		case "SetUnits":
			checkSetUnits(pass, call, txnLen)
		case "CutAfter":
			checkCutAfter(pass, call, txnLen)
		}
		return true
	})
}

// checkSetUnits validates SetUnits(i, j, lens...) when the lengths are
// constant: each unit must be non-empty, and when Ti's program length
// is known the units must exactly cover it.
func checkSetUnits(pass *analysis.Pass, call *ast.CallExpr, txnLen map[int64]int) {
	if call.Ellipsis.IsValid() || len(call.Args) < 3 {
		return
	}
	sum, allConst := 0, true
	for k, arg := range call.Args[2:] {
		l, ok := intConst(pass, arg)
		if !ok {
			allConst = false
			continue
		}
		if l <= 0 {
			pass.Reportf(arg.Pos(),
				"atomic unit %d has non-positive length %d; units must partition the transaction into non-empty runs", k+1, l)
		}
		sum += int(l)
	}
	if !allConst {
		return
	}
	i, ok := intConst(pass, call.Args[0])
	if !ok {
		return
	}
	n, known := txnLen[i]
	if !known {
		return
	}
	switch {
	case sum < n:
		pass.Reportf(call.Pos(),
			"unit lengths sum to %d but T%d has %d operations; the partition does not cover the transaction", sum, i, n)
	case sum > n:
		pass.Reportf(call.Pos(),
			"unit lengths sum to %d but T%d has only %d operations; units overlap or overrun the transaction", sum, i, n)
	}
}

// checkCutAfter validates CutAfter(i, j, seq) for constant seq against
// a known program length: out-of-range breakpoints are errors, a cut
// after the final operation is a silent no-op worth flagging.
func checkCutAfter(pass *analysis.Pass, call *ast.CallExpr, txnLen map[int64]int) {
	if len(call.Args) != 3 {
		return
	}
	seq, ok := intConst(pass, call.Args[2])
	if !ok {
		return
	}
	if seq < 0 {
		pass.Reportf(call.Args[2].Pos(), "breakpoint after seq %d is out of range; seq is 0-based", seq)
		return
	}
	i, ok := intConst(pass, call.Args[0])
	if !ok {
		return
	}
	n, known := txnLen[i]
	if !known {
		return
	}
	switch {
	case int(seq) >= n:
		pass.Reportf(call.Args[2].Pos(),
			"breakpoint after seq %d is out of range for T%d with %d operations", seq, i, n)
	case int(seq) == n-1:
		pass.Reportf(call.Args[2].Pos(),
			"breakpoint after the final operation of T%d is a no-op; drop it or cut earlier", i)
	}
}

// isCoreName reports whether the selected identifier resolves to the
// core package or the relser facade (whose T, R, W are package vars
// bound to the core functions).
func isCoreName(pass *analysis.Pass, id *ast.Ident) bool {
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return false
	}
	switch obj := obj.(type) {
	case *types.Func:
		return obj.Pkg() != nil && corePaths[obj.Pkg().Path()]
	case *types.Var:
		return obj.Pkg() != nil && corePaths[obj.Pkg().Path()]
	}
	return false
}

func intConst(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
