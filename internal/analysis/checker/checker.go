// Package checker drives rsvet analyzers over loaded packages: it
// runs each analyzer, applies //rsvet:allow suppressions and returns
// the surviving findings in deterministic order.
package checker

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"relser/internal/analysis"
	"relser/internal/analysis/callgraph"
	"relser/internal/analysis/load"
)

// Finding is one unsuppressed diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: message [analyzer]".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package. Diagnostics on a line
// carrying (or directly below) an //rsvet:allow directive naming the
// analyzer are dropped. The error return reports analyzer failures,
// not findings.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	// One call graph spans the whole run: the interprocedural analyzers
	// follow calls across package boundaries and memoize their derived
	// facts on it (callgraph.Memo), so per-package passes stay cheap.
	graph := callgraph.Build(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		allowed := allowDirectives(pkg)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Graph:     graph,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allowed.suppresses(name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("checker: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// allowSet records, per file and line, which analyzers are suppressed.
type allowSet map[string]map[int]map[string]bool

// suppresses reports whether a finding of the analyzer at pos is
// covered by an //rsvet:allow on the same line or the line above.
func (s allowSet) suppresses(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// allowDirectives scans a package's comments for //rsvet:allow
// directives. Grammar:
//
//	//rsvet:allow name1,name2 -- free-text reason
func allowDirectives(pkg *load.Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rsvet:allow")
				if !ok {
					continue
				}
				text, _, _ = strings.Cut(text, "--")
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					names[name] = true
				}
				if len(names) == 0 {
					names["all"] = true
				}
			}
		}
	}
	return set
}
