// Package infer synthesizes a relative-atomicity specification from
// workload code: the static on-ramp to ROADMAP item 4. It extracts
// each transaction program's read/write key sets from `core.T(id,
// ...)` construction sites, follows helper calls interprocedurally to
// recover the access sets they contribute, and feeds the result to
// speclint's potential-RSG machinery to emit the finest chop the
// static argument can certify.
//
// Grouping rule: an operation built inline in the core.T call
// (core.R("x"), core.W("x")) is a programmer-visible step and becomes
// its own candidate unit; operations bundled by one helper call
// (debitCredit("a", "b"), or a spread helper(...)... argument) were
// packaged as one step and stay one atomic unit. The synthesized spec
// cuts Atomicity(Ti, Tj) exactly at Ti's step boundaries for pairs in
// the same conflict component — the finest spec the code's own
// structure supports — and leaves cross-component pairs absolute,
// which certification ignores (no D-arcs) and speclint's breakpoint
// lint prefers.
//
// Helper evaluation is deliberately shallow and explicit: a helper
// must return core.R/core.W calls, a []core.Op composite literal of
// them, or delegate to another such helper (bounded depth); string
// arguments resolve through Go constant folding plus parameter
// substitution at the call site. Anything else — loops, appends,
// dynamic keys — is reported as an unresolved shape in Notes, never
// silently dropped, because an incomplete access set would make the
// certificate unsound.
package infer

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"relser/internal/analysis/load"
	"relser/internal/analysis/speclint"
	"relser/internal/core"
)

const corePath = "relser/internal/core"

// maxHelperDepth bounds helper-to-helper delegation.
const maxHelperDepth = 8

// Txn is one extracted transaction program: its operations in program
// order, partitioned into the steps the source code exhibits.
type Txn struct {
	ID     core.TxnID
	Groups [][]core.Op
}

// Ops flattens the step groups into program order.
func (t Txn) Ops() []core.Op {
	var ops []core.Op
	for _, g := range t.Groups {
		ops = append(ops, g...)
	}
	return ops
}

// groupLens returns the unit lengths SetUnits wants.
func (t Txn) groupLens() []int {
	lens := make([]int, len(t.Groups))
	for i, g := range t.Groups {
		lens[i] = len(g)
	}
	return lens
}

// Result is one package's synthesis.
type Result struct {
	PkgPath string
	Txns    []Txn
	// Spec is the synthesized specification over the extracted set.
	Spec *core.Spec
	// Report is speclint's verdict on Spec; Report.Certified means the
	// static potential-RSG argument covers every execution.
	Report speclint.Report
	// Notes records shapes the extractor could not resolve. A non-empty
	// Notes list means the access sets may be incomplete and the
	// certificate only covers the extracted operations.
	Notes []string
}

// Package extracts transaction programs from one loaded package and
// synthesizes the finest certifiable spec. It fails when the package
// constructs no transactions.
func Package(pkg *load.Package) (*Result, error) {
	x := &extractor{pkg: pkg, byID: map[core.TxnID]*Txn{}}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			x.visitCall(call)
			return true
		})
	}
	if len(x.byID) == 0 {
		return nil, fmt.Errorf("infer: no core.T construction sites in %s", pkg.PkgPath)
	}

	res := &Result{PkgPath: pkg.PkgPath, Notes: x.notes}
	ids := make([]core.TxnID, 0, len(x.byID))
	for id := range x.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var txns []*core.Transaction
	for _, id := range ids {
		t := *x.byID[id]
		res.Txns = append(res.Txns, t)
		txns = append(txns, core.T(id, t.Ops()...))
	}
	ts, err := core.NewTxnSet(txns...)
	if err != nil {
		return nil, fmt.Errorf("infer: %s: %v", pkg.PkgPath, err)
	}

	// Cut every same-component ordered pair at Ti's step boundaries;
	// cross-component pairs stay absolute (no D-arcs reach them).
	sp := core.NewSpec(ts)
	comp := speclint.ConflictComponents(ts)
	for _, ti := range res.Txns {
		for _, tj := range res.Txns {
			if ti.ID == tj.ID || comp[ti.ID] != comp[tj.ID] {
				continue
			}
			if len(ti.Groups) == 1 {
				continue // single step: absolute is already the finest
			}
			if err := sp.SetUnits(ti.ID, tj.ID, ti.groupLens()...); err != nil {
				return nil, fmt.Errorf("infer: %s: %v", pkg.PkgPath, err)
			}
		}
	}
	res.Spec = sp
	res.Report = speclint.Check(sp)
	return res, nil
}

// InstanceText renders the synthesis in the instance-file grammar
// (core.ParseInstance reads it back): txn lines, then allowall for
// fully chopped pairs and atomicity lines for coarser ones.
func (r *Result) InstanceText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# spec inferred by rsvet -infer from %s\n", r.PkgPath)
	for _, t := range r.Txns {
		fmt.Fprintf(&sb, "txn %d:", int(t.ID))
		for _, op := range t.Ops() {
			sb.WriteByte(' ')
			sb.WriteString(opText(op))
		}
		sb.WriteByte('\n')
	}
	for _, ti := range r.Txns {
		for _, tj := range r.Txns {
			if ti.ID == tj.ID || r.Spec.NumUnits(ti.ID, tj.ID) == 1 {
				continue
			}
			if r.Spec.NumUnits(ti.ID, tj.ID) == len(ti.Ops()) {
				fmt.Fprintf(&sb, "allowall %d %d\n", int(ti.ID), int(tj.ID))
				continue
			}
			fmt.Fprintf(&sb, "atomicity %d %d:", int(ti.ID), int(tj.ID))
			ops := ti.Ops()
			for k := 0; k < r.Spec.NumUnits(ti.ID, tj.ID); k++ {
				start, end := r.Spec.Unit(ti.ID, tj.ID, k)
				sb.WriteString(" [")
				for s := start; s <= end; s++ {
					if s > start {
						sb.WriteByte(' ')
					}
					sb.WriteString(opText(ops[s]))
				}
				sb.WriteByte(']')
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func opText(op core.Op) string {
	k := "r"
	if op.Kind == core.WriteOp {
		k = "w"
	}
	return k + "[" + op.Object + "]"
}

// extractor walks one package for core.T sites.
type extractor struct {
	pkg   *load.Package
	byID  map[core.TxnID]*Txn
	notes []string
}

func (x *extractor) notef(pos ast.Node, format string, args ...any) {
	p := x.pkg.Fset.Position(pos.Pos())
	x.notes = append(x.notes, fmt.Sprintf("%s: %s", p, fmt.Sprintf(format, args...)))
}

// visitCall handles one call expression if it is core.T(...) (or the
// relser facade's T, a var alias of it).
func (x *extractor) visitCall(call *ast.CallExpr) {
	c, ok := x.resolve(call)
	if !ok || c.path != corePath || c.name != "T" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	idVal, ok := x.constInt(call.Args[0])
	if !ok {
		x.notef(call, "core.T with non-constant transaction id: site skipped")
		return
	}
	id := core.TxnID(idVal)
	var groups [][]core.Op
	complete := true
	for i, arg := range call.Args[1:] {
		spread := call.Ellipsis.IsValid() && i == len(call.Args)-2
		ops, ok := x.evalOpsExpr(arg, nil, maxHelperDepth)
		if !ok {
			complete = false
			continue
		}
		if spread || len(ops) > 1 {
			groups = append(groups, ops) // helper-bundled: one step
			continue
		}
		for _, op := range ops {
			groups = append(groups, []core.Op{op}) // inline: own step
		}
	}
	if !complete {
		x.notef(call, "core.T(%d, ...): unresolved argument(s); transaction skipped (access set would be incomplete)", idVal)
		return
	}
	if prev, dup := x.byID[id]; dup {
		if !sameGroups(prev.Groups, groups) {
			x.notef(call, "core.T(%d, ...): conflicting redefinition; keeping the first site", idVal)
		}
		return
	}
	x.byID[id] = &Txn{ID: id, Groups: groups}
}

func sameGroups(a, b [][]core.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Kind != b[i][j].Kind || a[i][j].Object != b[i][j].Object {
				return false
			}
		}
	}
	return true
}

// evalOpsExpr evaluates an expression expected to produce operations:
// a core.R/W call, a helper call, or (inside helpers) a []core.Op
// composite literal. env maps helper parameters to resolved strings.
func (x *extractor) evalOpsExpr(expr ast.Expr, env map[string]string, depth int) ([]core.Op, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.CallExpr:
		return x.evalCall(e, env, depth)
	case *ast.CompositeLit:
		tv, ok := x.pkg.TypesInfo.Types[e]
		if !ok || !isOpSlice(tv.Type) {
			x.notef(e, "composite literal is not []core.Op")
			return nil, false
		}
		var ops []core.Op
		for _, elt := range e.Elts {
			sub, ok := x.evalOpsExpr(elt, env, depth)
			if !ok {
				return nil, false
			}
			ops = append(ops, sub...)
		}
		return ops, true
	}
	x.notef(expr, "cannot statically resolve operation expression")
	return nil, false
}

// evalCall evaluates core.R/W or a source-visible helper call.
func (x *extractor) evalCall(call *ast.CallExpr, env map[string]string, depth int) ([]core.Op, bool) {
	c, ok := x.resolve(call)
	if !ok {
		x.notef(call, "cannot statically resolve callee")
		return nil, false
	}
	if c.path == corePath {
		switch c.name {
		case "R", "W":
			if len(call.Args) != 1 {
				return nil, false
			}
			obj, ok := x.stringValue(call.Args[0], env)
			if !ok {
				x.notef(call, "core.%s with non-constant object key", c.name)
				return nil, false
			}
			if c.name == "R" {
				return []core.Op{core.R(obj)}, true
			}
			return []core.Op{core.W(obj)}, true
		}
		x.notef(call, "unsupported core.%s call in transaction body", c.name)
		return nil, false
	}
	if depth == 0 {
		x.notef(call, "helper nesting exceeds depth %d", maxHelperDepth)
		return nil, false
	}
	decl := x.declOf(c.fn)
	if decl == nil || decl.Body == nil {
		x.notef(call, "helper %s has no source in this package", c.name)
		return nil, false
	}
	// Bind constant-resolvable arguments to parameter names.
	sub := map[string]string{}
	params := flattenParams(decl)
	for i, arg := range call.Args {
		if i >= len(params) {
			break
		}
		if v, ok := x.stringValue(arg, env); ok {
			sub[params[i]] = v
		}
	}
	ret := singleReturn(decl)
	if ret == nil || len(ret.Results) != 1 {
		x.notef(call, "helper %s is not a single-return op builder", c.name)
		return nil, false
	}
	return x.evalOpsExpr(ret.Results[0], sub, depth-1)
}

// callee identifies a call target: the declaring package path and
// name, plus the function object when there is one (the relser facade
// re-exports T/R/W as var aliases, which resolve by name alone).
type callee struct {
	path, name string
	fn         *types.Func
}

// facadeNames are the relser root-package var aliases of core builders.
var facadeNames = map[string]bool{"T": true, "R": true, "W": true}

// resolve finds the static callee of a call.
func (x *extractor) resolve(call *ast.CallExpr) (callee, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = x.pkg.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = x.pkg.TypesInfo.Uses[fun.Sel]
	}
	switch o := obj.(type) {
	case *types.Func:
		if o.Pkg() == nil {
			return callee{}, false
		}
		return callee{path: o.Pkg().Path(), name: o.Name(), fn: o}, true
	case *types.Var:
		if o.Pkg() != nil && o.Pkg().Path() == "relser" && facadeNames[o.Name()] {
			return callee{path: corePath, name: o.Name()}, true
		}
	}
	return callee{}, false
}

// declOf finds a function's declaration in the loaded package.
func (x *extractor) declOf(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	for _, f := range x.pkg.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := x.pkg.TypesInfo.Defs[decl.Name].(*types.Func); ok && obj == fn {
					return decl
				}
			}
		}
	}
	return nil
}

// singleReturn returns the declaration's sole top-level return.
func singleReturn(decl *ast.FuncDecl) *ast.ReturnStmt {
	var ret *ast.ReturnStmt
	for _, stmt := range decl.Body.List {
		if r, ok := stmt.(*ast.ReturnStmt); ok {
			if ret != nil {
				return nil
			}
			ret = r
		}
	}
	return ret
}

func flattenParams(decl *ast.FuncDecl) []string {
	var out []string
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, name.Name)
		}
	}
	return out
}

// stringValue resolves an expression to a string through Go constant
// folding, falling back to the helper parameter environment.
func (x *extractor) stringValue(e ast.Expr, env map[string]string) (string, bool) {
	if tv, ok := x.pkg.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && env != nil {
		if v, ok := env[id.Name]; ok {
			return v, true
		}
	}
	return "", false
}

// constInt resolves a constant integer expression.
func (x *extractor) constInt(e ast.Expr) (int64, bool) {
	tv, ok := x.pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return v, ok
}

func isOpSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == corePath && obj.Name() == "Op"
}
