package infer_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relser/internal/analysis/infer"
	"relser/internal/analysis/load"
	"relser/internal/core"
)

func moduleDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", dir, err)
	}
	return dir
}

// TestInferPartitionedGolden asserts the spec synthesized from
// examples/partitioned equals the certified spec its instance file
// declares: the static half of ROADMAP item 4, end to end.
func TestInferPartitionedGolden(t *testing.T) {
	root := moduleDir(t)
	pkg, err := load.Dir(root, filepath.Join(root, "examples/partitioned"))
	if err != nil {
		t.Fatalf("loading example: %v", err)
	}
	res, err := infer.Package(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 0 {
		t.Fatalf("unexpected extraction notes: %v", res.Notes)
	}
	if !res.Report.Certified {
		t.Fatalf("inferred spec not certified; findings: %v", res.Report.Findings)
	}

	f, err := os.Open(filepath.Join(root, "examples/specs/partitioned.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	inst, err := core.ParseInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Spec.String()
	got := res.Spec.String()
	if got != want {
		t.Errorf("inferred spec differs from certified spec:\n--- inferred ---\n%s\n--- certified ---\n%s", got, want)
	}
}

// TestInstanceTextRoundTrips feeds the emitted text back through the
// instance parser and checks the spec survives.
func TestInstanceTextRoundTrips(t *testing.T) {
	root := moduleDir(t)
	pkg, err := load.Dir(root, filepath.Join(root, "examples/partitioned"))
	if err != nil {
		t.Fatalf("loading example: %v", err)
	}
	res, err := infer.Package(pkg)
	if err != nil {
		t.Fatal(err)
	}
	text := res.InstanceText()
	inst, err := core.ParseInstance(strings.NewReader(text))
	if err != nil {
		t.Fatalf("emitted text does not re-parse: %v\n%s", err, text)
	}
	if got, want := inst.Spec.String(), res.Spec.String(); got != want {
		t.Errorf("round-tripped spec differs:\n--- parsed ---\n%s\n--- synthesized ---\n%s", got, want)
	}
}

// TestInferWitness asserts the helper-bundled workload fails
// certification with a concrete cycle witness, and that helper
// argument substitution recovered the real keys.
func TestInferWitness(t *testing.T) {
	root := moduleDir(t)
	pkg, err := load.Dir(root, filepath.Join(root, "internal/analysis/testdata/src/infer"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res, err := infer.Package(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 0 {
		t.Fatalf("unexpected extraction notes: %v", res.Notes)
	}
	if len(res.Txns) != 3 {
		t.Fatalf("want 3 transactions, got %d", len(res.Txns))
	}
	t1 := res.Txns[0]
	if len(t1.Groups) != 1 || len(t1.Groups[0]) != 4 {
		t.Fatalf("T1 should be one helper-bundled step of 4 ops, got %v", t1.Groups)
	}
	if t1.Groups[0][0].Object != "acct_a" || t1.Groups[0][2].Object != "acct_b" {
		t.Fatalf("helper parameter substitution lost keys: %v", t1.Groups[0])
	}
	if res.Report.Certified {
		t.Fatal("helper-bundled conflicting transfer must not certify")
	}
	witnessed := false
	for _, f := range res.Report.Findings {
		if strings.Contains(f.Message, "potential cycle") {
			witnessed = true
		}
	}
	if !witnessed {
		t.Errorf("no cycle witness in findings: %v", res.Report.Findings)
	}
}
