package shard

import (
	"fmt"
	"hash/fnv"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{8, 8}, {9, 16}, {255, 256}, {256, 256}, {1 << 20, MaxShards},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestHashMatchesFNV1a(t *testing.T) {
	for _, s := range []string{"", "a", "x1", "account_042", "long-object-name-with-suffix-7"} {
		h := fnv.New32a()
		h.Write([]byte(s))
		if got, want := Hash(s), h.Sum32(); got != want {
			t.Errorf("Hash(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestRouterStableAndInRange(t *testing.T) {
	r := NewRouter(8)
	if r.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", r.Shards())
	}
	for i := 0; i < 1000; i++ {
		obj := fmt.Sprintf("obj%d", i)
		s := r.Shard(obj)
		if s < 0 || s >= 8 {
			t.Fatalf("Shard(%q) = %d out of range", obj, s)
		}
		if again := r.Shard(obj); again != s {
			t.Fatalf("Shard(%q) unstable: %d then %d", obj, s, again)
		}
	}
}

func TestRouterSpreads(t *testing.T) {
	// Not a statistical test — just that a realistic object population
	// does not collapse onto one shard.
	r := NewRouter(8)
	counts := make([]int, 8)
	for i := 0; i < 4096; i++ {
		counts[r.Shard(fmt.Sprintf("x%d", i))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no objects", s)
		}
	}
}

func TestZeroRouter(t *testing.T) {
	var r Router
	if r.Shards() != 1 {
		t.Fatalf("zero Router Shards() = %d, want 1", r.Shards())
	}
	if s := r.Shard("anything"); s != 0 {
		t.Fatalf("zero Router Shard() = %d, want 0", s)
	}
}
