// Package shard provides the key-space partitioning shared by the
// concurrent transaction driver, the striped lock-based protocols and
// the storage substrate: object names are hashed (FNV-1a) onto a
// power-of-two number of shards, so two components configured with the
// same shard count agree on every object's shard and per-shard state
// never needs cross-shard coordination for same-object accesses.
package shard

// MaxShards bounds Normalize; more shards than this buys nothing for
// the workloads the runtime targets and wastes per-shard fixed cost.
const MaxShards = 256

// Router maps object names to shard indices. The zero value routes
// everything to shard 0; use NewRouter for a real partition.
type Router struct {
	mask uint32
	n    int
}

// NewRouter returns a router over Normalize(n) shards.
func NewRouter(n int) Router {
	n = Normalize(n)
	return Router{mask: uint32(n - 1), n: n}
}

// Shards returns the number of shards (always a power of two, ≥ 1).
func (r Router) Shards() int {
	if r.n == 0 {
		return 1
	}
	return r.n
}

// Shard returns the shard index of the object.
func (r Router) Shard(object string) int {
	return int(Hash(object) & r.mask)
}

// ShardID maps an integer identifier (a transaction instance) to a
// shard. IDs are sequential in practice, so they pass through a
// SplitMix64-style finalizer first: consecutive IDs spread across
// shards instead of striping predictably.
func (r Router) ShardID(id int64) int {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(uint32(x) & r.mask)
}

// Normalize clamps n to [1, MaxShards] and rounds it up to the next
// power of two, so the router can mask instead of mod.
func Normalize(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Hash is 32-bit FNV-1a over the object name, inlined to keep the hot
// path allocation-free (hash/fnv forces a []byte conversion).
func Hash(object string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(object); i++ {
		h ^= uint32(object[i])
		h *= prime32
	}
	return h
}
