package core

import (
	"fmt"
	"sort"
	"strings"

	"relser/internal/graph"
)

// ArcKind is a bitmask of the arc kinds of Definition 3. One vertex
// pair may carry several kinds (the paper's Figure 3 labels edges
// "D,F,B" and similar).
type ArcKind uint8

const (
	// IArc connects consecutive operations of one transaction
	// (internal arcs; program order).
	IArc ArcKind = 1 << iota
	// DArc connects oij -> okl (i ≠ k) when okl depends on oij
	// (dependency arcs; these subsume conflicts).
	DArc
	// FArc is a push-forward arc: for each D-arc oij -> okl,
	// PushForward(oij, Tk) -> okl.
	FArc
	// BArc is a pull-backward arc: for each D-arc okl -> oij,
	// okl -> PullBackward(oij, Tk).
	BArc
)

// String renders the kind set in the paper's figure notation, e.g.
// "D,F,B".
func (k ArcKind) String() string {
	var parts []string
	if k&IArc != 0 {
		parts = append(parts, "I")
	}
	if k&DArc != 0 {
		parts = append(parts, "D")
	}
	if k&FArc != 0 {
		parts = append(parts, "F")
	}
	if k&BArc != 0 {
		parts = append(parts, "B")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// RSG is the relative serialization graph of a schedule under a
// relative atomicity specification (Definition 3). Vertices are the
// operations of the transaction set, addressed by their TxnSet global
// index; arcs carry a kind mask. Theorem 1: the schedule is relatively
// serializable iff the graph is acyclic.
type RSG struct {
	s     *Schedule
	sp    *Spec
	dep   *Depends
	g     *graph.Dense
	kinds map[[2]int]ArcKind
}

// BuildRSG constructs RSG(S) for the schedule under the specification.
// The depends-on relation is computed from the schedule (transitive, as
// the paper requires).
func BuildRSG(s *Schedule, sp *Spec) *RSG {
	return buildRSG(s, sp, ComputeDepends(s))
}

// BuildRSGUnder constructs the graph with a caller-supplied depends-on
// relation; supplying ComputeDirectDepends(s) gives the Figure 2
// ablation variant.
func BuildRSGUnder(s *Schedule, sp *Spec, d *Depends) *RSG {
	if d.Schedule() != s {
		panic("core: depends-on relation computed from a different schedule")
	}
	return buildRSG(s, sp, d)
}

func buildRSG(s *Schedule, sp *Spec, dep *Depends) *RSG {
	ts := s.Set()
	n := ts.NumOps()
	r := &RSG{
		s:     s,
		sp:    sp,
		dep:   dep,
		g:     graph.NewDense(n),
		kinds: make(map[[2]int]ArcKind),
	}
	// I-arcs: consecutive operations of each transaction.
	for _, t := range ts.Txns() {
		for seq := 0; seq+1 < t.Len(); seq++ {
			r.addArc(ts.GlobalIndex(t.ID, seq), ts.GlobalIndex(t.ID, seq+1), IArc)
		}
	}
	// D-arcs with their induced F- and B-arcs. For each D-arc u -> v
	// with u ∈ Ti, v ∈ Tk (i ≠ k): F-arc PushForward(u, Tk) -> v
	// (rule 3) and B-arc u -> PullBackward(v, Ti) (rule 4; there the
	// D-arc is written okl -> oij with okl ∈ Tk, oij ∈ Ti, and the
	// added arc is okl -> PullBackward(oij, Tk) — i.e. source ->
	// first operation of the target's unit relative to the source's
	// transaction).
	for posV := 0; posV < s.Len(); posV++ {
		v := s.At(posV)
		gv := ts.GlobalIndexOf(v)
		r.dep.Predecessors(posV).ForEach(func(posU int) bool {
			u := s.At(posU)
			if u.Txn == v.Txn {
				return true
			}
			gu := ts.GlobalIndexOf(u)
			r.addArc(gu, gv, DArc)
			pf := sp.PushForward(u, v.Txn)
			r.addArc(ts.GlobalIndexOf(pf), gv, FArc)
			pb := sp.PullBackward(v, u.Txn)
			r.addArc(gu, ts.GlobalIndexOf(pb), BArc)
			return true
		})
	}
	return r
}

func (r *RSG) addArc(u, v int, kind ArcKind) {
	// Definition 3 never produces self-arcs: every rule connects
	// operations of two distinct transactions, or consecutive distinct
	// operations of one transaction.
	r.g.AddArc(u, v)
	key := [2]int{u, v}
	r.kinds[key] |= kind
}

// Schedule returns the underlying schedule.
func (r *RSG) Schedule() *Schedule { return r.s }

// Spec returns the relative atomicity specification used.
func (r *RSG) Spec() *Spec { return r.sp }

// NumVertices returns the number of vertices (operations).
func (r *RSG) NumVertices() int { return r.g.Len() }

// NumArcs returns the number of distinct arcs.
func (r *RSG) NumArcs() int { return r.g.ArcCount() }

// ArcKinds returns the kind mask of the arc u -> v, or 0 if absent.
func (r *RSG) ArcKinds(u, v Op) ArcKind {
	ts := r.s.Set()
	return r.kinds[[2]int{ts.GlobalIndexOf(u), ts.GlobalIndexOf(v)}]
}

// HasArc reports whether any arc u -> v is present.
func (r *RSG) HasArc(u, v Op) bool { return r.ArcKinds(u, v) != 0 }

// Arcs calls fn for every arc in deterministic order with its kinds.
func (r *RSG) Arcs(fn func(u, v Op, kind ArcKind) bool) {
	ts := r.s.Set()
	r.g.Arcs(func(gu, gv int) bool {
		return fn(ts.OpAt(gu), ts.OpAt(gv), r.kinds[[2]int{gu, gv}])
	})
}

// Acyclic reports whether the graph is acyclic; by Theorem 1 this holds
// iff the schedule is relatively serializable.
func (r *RSG) Acyclic() bool { return !r.g.HasCycle() }

// Cycle returns the operations of one directed cycle, or nil if the
// graph is acyclic.
func (r *RSG) Cycle() []Op {
	cyc := r.g.FindCycle()
	if cyc == nil {
		return nil
	}
	ts := r.s.Set()
	out := make([]Op, len(cyc))
	for i, g := range cyc {
		out[i] = ts.OpAt(g)
	}
	return out
}

// Witness returns a relatively serial schedule that is conflict
// equivalent to the underlying schedule, obtained by topologically
// sorting the graph (the constructive direction of Theorem 1). The
// sort prefers the original schedule order, so a schedule that is
// already relatively serial is returned unchanged. Returns an error if
// the graph is cyclic.
func (r *RSG) Witness() (*Schedule, error) {
	ts := r.s.Set()
	rank := make([]int, ts.NumOps())
	for g := range rank {
		rank[g] = r.s.PosOfGlobal(g)
	}
	order, ok := r.g.TopoOrderPreferring(rank)
	if !ok {
		return nil, fmt.Errorf("core: RSG is cyclic; schedule is not relatively serializable")
	}
	ops := make([]Op, len(order))
	for i, g := range order {
		ops[i] = ts.OpAt(g)
	}
	return NewSchedule(ts, ops)
}

// Dot renders the graph in Graphviz DOT format with arc-kind labels in
// the style of the paper's Figure 3. I-arcs are drawn bold, D-arcs
// solid, F-arcs dashed and B-arcs dotted; arcs carrying several kinds
// list all labels.
func (r *RSG) Dot(name string) string {
	ts := r.s.Set()
	var d graph.DotGraph
	d.Name = name
	for g := 0; g < ts.NumOps(); g++ {
		d.AddNode(g, ts.OpAt(g).String(), nil)
	}
	type arc struct{ u, v int }
	arcs := make([]arc, 0, len(r.kinds))
	for key := range r.kinds {
		arcs = append(arcs, arc{key[0], key[1]})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	for _, a := range arcs {
		kind := r.kinds[[2]int{a.u, a.v}]
		attrs := map[string]string{}
		switch {
		case kind&IArc != 0:
			attrs["style"] = "bold"
		case kind&DArc != 0:
			attrs["style"] = "solid"
		case kind&FArc != 0:
			attrs["style"] = "dashed"
		default:
			attrs["style"] = "dotted"
		}
		d.AddEdge(a.u, a.v, kind.String(), attrs)
	}
	return d.String()
}

// IsRelativelySerializable reports whether the schedule is conflict
// equivalent to some relatively serial schedule, by Theorem 1 the
// acyclicity of RSG(S).
func IsRelativelySerializable(s *Schedule, sp *Spec) bool {
	return BuildRSG(s, sp).Acyclic()
}
