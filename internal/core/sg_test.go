package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

func TestSGFigure1Srs(t *testing.T) {
	inst := paperfig.Figure1()
	srs := inst.Schedules["Srs"]
	sg := core.BuildSG(srs)
	// Conflicts in Srs: T1 and T3 on x (w1x before w3x), T2 and T3 on
	// y (w2y before w3y), T1 and T3 on z (w1z before w3z), T3 and T2 on
	// x (w3x before r2x), T2 and T1 on y? r1[y] reads y after w2[y] and
	// w3[y]: arcs T2->T1 and T3->T1. And T1->T2 via w1x before r2x.
	wantArcs := [][2]core.TxnID{{1, 3}, {2, 3}, {3, 2}, {1, 2}, {2, 1}, {3, 1}}
	for _, a := range wantArcs {
		if !sg.HasArc(a[0], a[1]) {
			t.Errorf("SG missing arc T%d -> T%d", a[0], a[1])
		}
	}
	if sg.Acyclic() {
		t.Error("Srs has conflicting cycles among T1, T2, T3; SG must be cyclic")
	}
	if core.IsConflictSerializable(srs) {
		t.Error("Srs is not conflict serializable (it is relatively serial instead)")
	}
	if cyc := sg.Cycle(); len(cyc) < 2 {
		t.Errorf("Cycle() = %v", cyc)
	}
}

func TestSGSerializableSchedule(t *testing.T) {
	inst := paperfig.Figure2()
	s1 := inst.Schedules["S1"]
	sg := core.BuildSG(s1)
	if !sg.Acyclic() {
		t.Fatalf("S1's SG must be acyclic; cycle: %v", sg.Cycle())
	}
	order, ok := sg.SerializationOrder()
	if !ok {
		t.Fatal("no serialization order for acyclic SG")
	}
	// T2 -> T3 -> T1 is forced: w2y < r3y and w3z < r1z.
	pos := map[core.TxnID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[2] < pos[3] && pos[3] < pos[1]) {
		t.Errorf("serialization order %v must put T2 before T3 before T1", order)
	}
	if sg.Cycle() != nil {
		t.Error("Cycle() must be nil on acyclic graph")
	}
}

func TestSerialWitness(t *testing.T) {
	inst := paperfig.Figure2()
	s1 := inst.Schedules["S1"]
	w, err := core.SerialWitness(s1)
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsSerial() {
		t.Errorf("witness %s is not serial", w)
	}
	if !core.ConflictEquivalent(s1, w) {
		t.Errorf("witness %s is not conflict equivalent to S1", w)
	}
	// A non-serializable schedule has no witness.
	if _, err := core.SerialWitness(paperfig.Figure1().Schedules["Srs"]); err == nil {
		t.Error("expected error for non-serializable schedule")
	}
}

func TestSGNoSelfArcs(t *testing.T) {
	// Operations of one transaction never conflict, so the SG has no
	// self-loops even when a transaction reads and writes one object.
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.R("x")),
	)
	s := core.MustSchedule(ts, mustParsedSchedule(t, ts, "r1[x] w1[x] r2[x]").Ops())
	sg := core.BuildSG(s)
	if sg.HasArc(1, 1) {
		t.Error("self arc in SG")
	}
	if !sg.HasArc(1, 2) {
		t.Error("missing arc T1 -> T2")
	}
}

func TestSGDotOutput(t *testing.T) {
	inst := paperfig.Figure2()
	dot := core.BuildSG(inst.Schedules["S1"]).Dot("SG")
	for _, want := range []string{`digraph "SG"`, `label="T1"`, `label="T2"`, `label="T3"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func mustParsedSchedule(t *testing.T, ts *core.TxnSet, text string) *core.Schedule {
	t.Helper()
	s, err := core.ParseSchedule(ts, text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
