package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

// TestE3Fig3ExactArcs is experiment E3: RSG(S2) for Figure 3 carries
// exactly the twelve arcs the figure draws, with exactly the kind
// labels it shows.
func TestE3Fig3ExactArcs(t *testing.T) {
	inst := paperfig.Figure3()
	s2 := inst.Schedules["S2"]
	rsg := core.BuildRSG(s2, inst.Spec)

	op := func(txn core.TxnID, seq int) core.Op { return inst.Set.Txn(txn).Op(seq) }
	w1x, r1z := op(1, 0), op(1, 1)
	r2x, w2y := op(2, 0), op(2, 1)
	r3z, r3y := op(3, 0), op(3, 1)

	want := []struct {
		u, v core.Op
		kind core.ArcKind
	}{
		{w1x, r1z, core.IArc},
		{r2x, w2y, core.IArc},
		{r3z, r3y, core.IArc},
		{w1x, r2x, core.DArc | core.BArc},
		{w1x, w2y, core.DArc | core.BArc},
		{w1x, r3y, core.DArc | core.FArc | core.BArc},
		{r2x, r3y, core.DArc | core.FArc},
		{w2y, r3y, core.DArc | core.FArc},
		// The two arcs the text calls out explicitly:
		// "RSG(S2) contains the F-arc from r1[z] to r2[x]" and
		// "RSG(S2) contains the B-arc from w2[y] to r3[z]".
		{r1z, r2x, core.FArc},
		{r1z, w2y, core.FArc},
		{r2x, r3z, core.BArc},
		{w2y, r3z, core.BArc},
	}
	for _, a := range want {
		if got := rsg.ArcKinds(a.u, a.v); got != a.kind {
			t.Errorf("arc %v -> %v: kinds %v, want %v", a.u, a.v, got, a.kind)
		}
	}
	if rsg.NumArcs() != len(want) {
		var extra []string
		rsg.Arcs(func(u, v core.Op, kind core.ArcKind) bool {
			extra = append(extra, u.String()+" -> "+v.String()+" ("+kind.String()+")")
			return true
		})
		t.Errorf("RSG has %d arcs, figure draws %d:\n%s", rsg.NumArcs(), len(want), strings.Join(extra, "\n"))
	}
	if rsg.NumVertices() != 6 {
		t.Errorf("NumVertices = %d", rsg.NumVertices())
	}
	if !rsg.Acyclic() {
		t.Errorf("Figure 3's RSG is acyclic; got cycle %v", rsg.Cycle())
	}

	// The constructive direction of Theorem 1: a topological sort gives
	// a conflict-equivalent relatively serial schedule.
	w, err := rsg.Witness()
	if err != nil {
		t.Fatal(err)
	}
	if !core.ConflictEquivalent(w, s2) {
		t.Errorf("witness %s not conflict equivalent to S2", w)
	}
	if ok, v := core.IsRelativelySerial(w, inst.Spec); !ok {
		t.Errorf("witness %s not relatively serial: %v", w, v)
	}
}

func TestArcKindString(t *testing.T) {
	cases := []struct {
		kind core.ArcKind
		want string
	}{
		{core.IArc, "I"},
		{core.DArc | core.FArc | core.BArc, "D,F,B"},
		{core.FArc, "F"},
		{0, "none"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("ArcKind(%d).String() = %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestRSGFig1Schedules(t *testing.T) {
	inst := paperfig.Figure1()
	sp := inst.Spec
	for _, name := range []string{"Sra", "Srs", "S2"} {
		s := inst.Schedules[name]
		rsg := core.BuildRSG(s, sp)
		if !rsg.Acyclic() {
			t.Errorf("%s: RSG must be acyclic (all three are relatively serializable); cycle %v", name, rsg.Cycle())
			continue
		}
		w, err := rsg.Witness()
		if err != nil {
			t.Fatal(err)
		}
		if !core.ConflictEquivalent(w, s) {
			t.Errorf("%s: witness not conflict equivalent", name)
		}
		if ok, v := core.IsRelativelySerial(w, sp); !ok {
			t.Errorf("%s: witness not relatively serial: %v", name, v)
		}
	}
}

func TestRSGWitnessPrefersOriginalOrder(t *testing.T) {
	// A schedule that is already relatively serial must be returned
	// unchanged by Witness (the topological sort prefers schedule
	// positions).
	inst := paperfig.Figure1()
	srs := inst.Schedules["Srs"]
	w, err := core.BuildRSG(srs, inst.Spec).Witness()
	if err != nil {
		t.Fatal(err)
	}
	if w.String() != srs.String() {
		t.Errorf("witness of a relatively serial schedule changed it:\n got %s\nwant %s", w, srs)
	}
}

func TestRSGCyclicSchedule(t *testing.T) {
	// Under absolute atomicity, a non-conflict-serializable schedule
	// must yield a cyclic RSG (the model collapses to the classical
	// one; §2 after Lemma 1).
	inst := paperfig.Figure1()
	srs := inst.Schedules["Srs"]
	abs := core.NewSpec(inst.Set)
	rsg := core.BuildRSG(srs, abs)
	if rsg.Acyclic() {
		t.Fatal("Srs is not conflict serializable, so under absolute atomicity its RSG must be cyclic")
	}
	cyc := rsg.Cycle()
	if len(cyc) == 0 {
		t.Fatal("Cycle() empty for cyclic graph")
	}
	// The returned sequence must follow actual arcs.
	for i := range cyc {
		if !rsg.HasArc(cyc[i], cyc[(i+1)%len(cyc)]) {
			t.Errorf("cycle step %v -> %v is not an arc", cyc[i], cyc[(i+1)%len(cyc)])
		}
	}
	if _, err := rsg.Witness(); err == nil {
		t.Error("Witness must fail on a cyclic RSG")
	}
}

func TestRSGLemma2OnRelativelySerialSchedules(t *testing.T) {
	// Lemma 2: the RSG of a relatively serial schedule is acyclic.
	for _, named := range paperfig.All() {
		for _, name := range named.Instance.Names {
			s := named.Instance.Schedules[name]
			if ok, _ := core.IsRelativelySerial(s, named.Instance.Spec); !ok {
				continue
			}
			if !core.IsRelativelySerializable(s, named.Instance.Spec) {
				t.Errorf("%s/%s: relatively serial schedule has cyclic RSG (Lemma 2 violated)", named.Name, name)
			}
		}
	}
}

func TestRSGDirectAblationGraph(t *testing.T) {
	// Building the RSG over the direct (non-transitive) relation on
	// Figure 2's S1 loses the D-arc w2[y] -> r1[z].
	inst := paperfig.Figure2()
	s1 := inst.Schedules["S1"]
	w2y := inst.Set.Txn(2).Op(0)
	r1z := inst.Set.Txn(1).Op(1)

	full := core.BuildRSG(s1, inst.Spec)
	if full.ArcKinds(w2y, r1z)&core.DArc == 0 {
		t.Error("full RSG must have D-arc w2[y] -> r1[z]")
	}
	direct := core.BuildRSGUnder(s1, inst.Spec, core.ComputeDirectDepends(s1))
	if direct.ArcKinds(w2y, r1z) != 0 {
		t.Error("direct-only RSG must not relate w2[y] and r1[z]")
	}
}

func TestRSGDotOutput(t *testing.T) {
	inst := paperfig.Figure3()
	dot := core.BuildRSG(inst.Schedules["S2"], inst.Spec).Dot("fig3")
	for _, want := range []string{
		`digraph "fig3"`,
		`label="w1[x]"`,
		`label="D,F,B"`,
		`label="I"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestRSGAbsoluteEqualsConflictSerializability(t *testing.T) {
	// Under absolute atomicity the RSG test must agree with the SG test
	// on every fixture schedule (the §2 closing claim, checked more
	// broadly by the E10 property test).
	for _, named := range paperfig.All() {
		abs := core.NewSpec(named.Instance.Set)
		for _, name := range named.Instance.Names {
			s := named.Instance.Schedules[name]
			rser := core.IsRelativelySerializable(s, abs)
			csr := core.IsConflictSerializable(s)
			if rser != csr {
				t.Errorf("%s/%s: RSG (absolute) says %v, SG says %v", named.Name, name, rser, csr)
			}
		}
	}
}

func TestRSGAccessors(t *testing.T) {
	inst := paperfig.Figure3()
	s := inst.Schedules["S2"]
	rsg := core.BuildRSG(s, inst.Spec)
	if rsg.Schedule() != s || rsg.Spec() != inst.Spec {
		t.Error("accessors do not return the construction inputs")
	}
	count := 0
	rsg.Arcs(func(u, v core.Op, kind core.ArcKind) bool {
		if kind == 0 {
			t.Errorf("arc %v->%v with zero kind", u, v)
		}
		count++
		return true
	})
	if count != rsg.NumArcs() {
		t.Errorf("Arcs visited %d, NumArcs = %d", count, rsg.NumArcs())
	}
	// Early stop.
	count = 0
	rsg.Arcs(func(core.Op, core.Op, core.ArcKind) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d arcs", count)
	}
	// GlobalAt round-trips schedule positions.
	for pos := 0; pos < s.Len(); pos++ {
		g := s.GlobalAt(pos)
		if s.PosOfGlobal(g) != pos {
			t.Errorf("GlobalAt/PosOfGlobal mismatch at %d", pos)
		}
	}
	if inst.Spec.Set() != inst.Set {
		t.Error("Spec.Set accessor wrong")
	}
}

func TestBuildRSGUnderPanicsOnForeignSchedule(t *testing.T) {
	inst := paperfig.Figure1()
	other := core.ComputeDepends(inst.Schedules["Sra"])
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched depends-on")
		}
	}()
	core.BuildRSGUnder(inst.Schedules["Srs"], inst.Spec, other)
}
