package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

// TestE1Fig1Classes is experiment E1: the classification claims the
// paper makes about the Figure 1 schedules.
func TestE1Fig1Classes(t *testing.T) {
	inst := paperfig.Figure1()
	sp := inst.Spec
	sra := inst.Schedules["Sra"]
	srs := inst.Schedules["Srs"]
	s2 := inst.Schedules["S2"]

	// "even though Sra is not a serial schedule, it is correct with
	// respect to the relative atomicity specifications".
	if sra.IsSerial() {
		t.Error("Sra should not be serial")
	}
	if ok, v := core.IsRelativelyAtomic(sra, sp); !ok {
		t.Errorf("Sra must be relatively atomic; violation: %v", v)
	}
	if ok, v := core.IsRelativelySerial(sra, sp); !ok {
		t.Errorf("every relatively atomic schedule is relatively serial; violation: %v", v)
	}

	// "Hence, Srs is relatively serial" — via dependency-free
	// interleavings (r2[y] inside AtomicUnit(1, T1, T2), etc.).
	if ok, v := core.IsRelativelySerial(srs, sp); !ok {
		t.Errorf("Srs must be relatively serial; violation: %v", v)
	}
	if ok, _ := core.IsRelativelyAtomic(srs, sp); ok {
		t.Error("Srs interleaves r2[y] into AtomicUnit(1, T1, T2); not relatively atomic")
	}

	// "S2 ... is not relatively serial since w1[x] is interleaved with
	// AtomicUnit(2, T2, T1) and r2[x] depends on w1[x]."
	ok, v := core.IsRelativelySerial(s2, sp)
	if ok {
		t.Fatal("S2 must not be relatively serial")
	}
	if v == nil {
		t.Fatal("expected a violation explanation")
	}
	// The violation the paper names: w1[x] inside T2's unit [w2y r2x].
	if v.Op.String() != "w1[x]" || v.Unit != 2 {
		t.Errorf("violation = %v; paper names w1[x] interleaving AtomicUnit(2, T2, T1)", v)
	}
	if !v.HasDep {
		t.Error("violation should carry the depends-on witness")
	}

	// "However, S2 is relatively serializable since it is conflict
	// equivalent to the relatively serial schedule Srs."
	if !core.IsRelativelySerializable(s2, sp) {
		t.Error("S2 must be relatively serializable (Theorem 1)")
	}
}

// TestE2Fig2Classes is experiment E2: Figure 2's schedule S1 and the
// direct-conflicts ablation.
func TestE2Fig2Classes(t *testing.T) {
	inst := paperfig.Figure2()
	sp := inst.Spec
	s1 := inst.Schedules["S1"]

	// "S1 is not a correct schedule" (not relatively serial): w2[y]
	// sits inside [w1x r1z] and r1[z] transitively depends on it.
	ok, v := core.IsRelativelySerial(s1, sp)
	if ok {
		t.Fatal("S1 must not be relatively serial under the transitive depends-on relation")
	}
	if v.Op.String() != "w2[y]" || v.Unit != 1 {
		t.Errorf("violation = %v; expected w2[y] interleaving T1's unit", v)
	}

	// "If the depends on relation is based only on direct conflicts
	// then the schedule S1 will be considered as a correct schedule."
	direct := core.ComputeDirectDepends(s1)
	if ok, v := core.IsRelativelySerialUnder(s1, sp, direct); !ok {
		t.Errorf("ablation: direct-conflict relation must (unsoundly) accept S1; violation: %v", v)
	}

	// Not relatively atomic either (the same interleaving).
	if ok, _ := core.IsRelativelyAtomic(s1, sp); ok {
		t.Error("S1 interleaves T1's unit; not relatively atomic")
	}

	// S1 is conflict equivalent to the serial schedule T2 T3 T1, so it
	// is conflict serializable and relatively serializable; the figure's
	// point concerns Definition 2, not the graph test.
	if !core.IsConflictSerializable(s1) {
		t.Error("S1 is conflict equivalent to T2 T3 T1")
	}
	if !core.IsRelativelySerializable(s1, sp) {
		t.Error("S1 is relatively serializable (conflict equivalent to a serial schedule)")
	}
}

func TestSerialSchedulesAreRelativelyAtomic(t *testing.T) {
	// Every serial schedule trivially satisfies Definition 1 under any
	// specification: no operation interleaves anything.
	for _, named := range paperfig.All() {
		ts := named.Instance.Set
		s, err := core.SerialSchedule(ts)
		if err != nil {
			t.Fatal(err)
		}
		if ok, v := core.IsRelativelyAtomic(s, named.Instance.Spec); !ok {
			t.Errorf("%s: serial schedule not relatively atomic: %v", named.Name, v)
		}
		if ok, v := core.IsRelativelySerial(s, named.Instance.Spec); !ok {
			t.Errorf("%s: serial schedule not relatively serial: %v", named.Name, v)
		}
	}
}

func TestRelativelyAtomicImpliesRelativelySerial(t *testing.T) {
	// Definition 2 relaxes Definition 1, so RA ⊆ RS must hold on every
	// fixture schedule.
	for _, named := range paperfig.All() {
		for _, name := range named.Instance.Names {
			s := named.Instance.Schedules[name]
			ra, _ := core.IsRelativelyAtomic(s, named.Instance.Spec)
			rs, _ := core.IsRelativelySerial(s, named.Instance.Spec)
			if ra && !rs {
				t.Errorf("%s/%s: relatively atomic but not relatively serial", named.Name, name)
			}
		}
	}
}

func TestViolationErrorText(t *testing.T) {
	inst := paperfig.Figure2()
	_, v := core.IsRelativelySerial(inst.Schedules["S1"], inst.Spec)
	if v == nil {
		t.Fatal("expected violation")
	}
	msg := v.Error()
	if !strings.Contains(msg, "w2[y]") || !strings.Contains(msg, "depends on") {
		t.Errorf("violation text uninformative: %s", msg)
	}
	_, v2 := core.IsRelativelyAtomic(inst.Schedules["S1"], inst.Spec)
	if v2 == nil {
		t.Fatal("expected atomicity violation")
	}
	if !strings.Contains(v2.Error(), "interleaves") {
		t.Errorf("atomicity violation text uninformative: %s", v2.Error())
	}
}

func TestIsRelativelySerialUnderPanicsOnForeignDepends(t *testing.T) {
	inst := paperfig.Figure1()
	other := core.ComputeDepends(inst.Schedules["Sra"])
	defer func() {
		if recover() == nil {
			t.Error("expected panic when depends-on comes from a different schedule")
		}
	}()
	core.IsRelativelySerialUnder(inst.Schedules["Srs"], inst.Spec, other)
}

// TestFigure4RelativelySerial is half of experiment E4 (the other half,
// non-membership in relatively consistent, lives in the consistent
// package): the Figure 4 schedule S is relatively serial.
func TestFigure4RelativelySerial(t *testing.T) {
	inst := paperfig.Figure4()
	s := inst.Schedules["S"]
	if ok, v := core.IsRelativelySerial(s, inst.Spec); !ok {
		t.Errorf("Figure 4's S must be relatively serial; violation: %v", v)
	}
	if ok, _ := core.IsRelativelyAtomic(s, inst.Spec); ok {
		t.Error("Figure 4's S interleaves T1 into T3's unit; not relatively atomic")
	}
	if !core.IsRelativelySerializable(s, inst.Spec) {
		t.Error("relatively serial implies relatively serializable (Lemma 2)")
	}
}
