package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
)

func TestTxnSetIndexing(t *testing.T) {
	t1 := core.T(1, core.R("x"), core.W("x"))
	t3 := core.T(3, core.W("z"))
	t2 := core.T(2, core.R("y"), core.W("y"), core.R("x"))
	ts, err := core.NewTxnSet(t3, t1, t2) // order does not matter
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumTxns() != 3 || ts.NumOps() != 6 {
		t.Fatalf("NumTxns=%d NumOps=%d", ts.NumTxns(), ts.NumOps())
	}
	// Transactions are sorted by ID, so global indexing is
	// T1: 0-1, T2: 2-4, T3: 5.
	if g := ts.GlobalIndex(1, 0); g != 0 {
		t.Errorf("GlobalIndex(1,0) = %d", g)
	}
	if g := ts.GlobalIndex(2, 2); g != 4 {
		t.Errorf("GlobalIndex(2,2) = %d", g)
	}
	if g := ts.GlobalIndex(3, 0); g != 5 {
		t.Errorf("GlobalIndex(3,0) = %d", g)
	}
	for g := 0; g < ts.NumOps(); g++ {
		op := ts.OpAt(g)
		if ts.GlobalIndexOf(op) != g {
			t.Errorf("round-trip failed for global %d (%v)", g, op)
		}
	}
	if !ts.Has(2) || ts.Has(9) {
		t.Error("Has wrong")
	}
	if ts.Txn(2).Len() != 3 {
		t.Error("Txn lookup wrong")
	}
}

func TestTxnSetValidation(t *testing.T) {
	valid := core.T(1, core.R("x"))
	tests := []struct {
		name string
		txns []*core.Transaction
		want string
	}{
		{"empty set", nil, "empty transaction set"},
		{"duplicate ids", []*core.Transaction{valid, core.T(1, core.W("y"))}, "duplicate"},
		{"empty transaction", []*core.Transaction{{ID: 2, Ops: nil}}, "no operations"},
		{"bad id", []*core.Transaction{{ID: -1, Ops: []core.Op{{Txn: -1, Object: "x"}}}}, "not positive"},
		{"nil txn", []*core.Transaction{nil}, "nil transaction"},
		{"inconsistent identity", []*core.Transaction{{ID: 2, Ops: []core.Op{{Txn: 7, Seq: 0, Object: "x"}}}}, "inconsistent identity"},
		{"empty object", []*core.Transaction{{ID: 2, Ops: []core.Op{{Txn: 2, Seq: 0, Object: ""}}}}, "empty object"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := core.NewTxnSet(tc.txns...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestTxnSetObjects(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("z")),
		core.T(2, core.W("a"), core.R("x")),
	)
	objs := ts.Objects()
	want := []string{"a", "x", "z"}
	if len(objs) != len(want) {
		t.Fatalf("Objects = %v", objs)
	}
	for i := range want {
		if objs[i] != want[i] {
			t.Fatalf("Objects = %v, want %v", objs, want)
		}
	}
}

func TestTxnSetString(t *testing.T) {
	ts := core.MustTxnSet(core.T(2, core.W("y")), core.T(1, core.R("x")))
	want := "T1 = r1[x]\nT2 = w2[y]"
	if got := ts.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTxnSetGlobalIndexPanics(t *testing.T) {
	ts := core.MustTxnSet(core.T(1, core.R("x")))
	for _, fn := range []func(){
		func() { ts.GlobalIndex(9, 0) },
		func() { ts.GlobalIndex(1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}
