package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

func TestSpecDefaultsAbsolute(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x"), core.W("z")),
		core.T(2, core.R("y")),
	)
	sp := core.NewSpec(ts)
	if !sp.IsAbsolute() {
		t.Error("fresh spec should be absolute atomicity")
	}
	if n := sp.NumUnits(1, 2); n != 1 {
		t.Errorf("NumUnits(1,2) = %d, want 1", n)
	}
	s, e := sp.UnitOf(1, 1, 2)
	if s != 0 || e != 2 {
		t.Errorf("UnitOf = [%d,%d], want [0,2]", s, e)
	}
}

func TestSpecSetUnitsFigure1(t *testing.T) {
	inst := paperfig.Figure1()
	sp := inst.Spec
	// Atomicity(T1, T2) = <[r1x w1x], [w1z r1y]>.
	if n := sp.NumUnits(1, 2); n != 2 {
		t.Fatalf("NumUnits(1,2) = %d, want 2", n)
	}
	s, e := sp.Unit(1, 2, 0)
	if s != 0 || e != 1 {
		t.Errorf("unit 0 = [%d,%d], want [0,1]", s, e)
	}
	s, e = sp.Unit(1, 2, 1)
	if s != 2 || e != 3 {
		t.Errorf("unit 1 = [%d,%d], want [2,3]", s, e)
	}
	if sp.IsAbsolute() {
		t.Error("Figure 1 spec is not absolute")
	}
	if got := sp.Atomicity(1, 2); got != "[r1[x] w1[x]] [w1[z] r1[y]]" {
		t.Errorf("Atomicity(1,2) = %q", got)
	}
	if idx := sp.UnitIndexOf(1, 3, 2); idx != 1 {
		t.Errorf("UnitIndexOf(1, seq 3, rel 2) = %d, want 1", idx)
	}
}

func TestSpecPushForwardPullBackwardPaper(t *testing.T) {
	// §3: "PushForward(r1[x], T2) is w1[x] and PullBackward(r1[y], T2)
	// is w1[z]" for the Figure 1 specifications.
	inst := paperfig.Figure1()
	sp := inst.Spec
	t1 := inst.Set.Txn(1)
	r1x, w1x, w1z, r1y := t1.Op(0), t1.Op(1), t1.Op(2), t1.Op(3)
	if got := sp.PushForward(r1x, 2); got != w1x {
		t.Errorf("PushForward(r1[x], T2) = %v, want %v", got, w1x)
	}
	if got := sp.PullBackward(r1y, 2); got != w1z {
		t.Errorf("PullBackward(r1[y], T2) = %v, want %v", got, w1z)
	}
	// Relative to T3, w1[z] and r1[y] are singleton units.
	if got := sp.PushForward(w1z, 3); got != w1z {
		t.Errorf("PushForward(w1[z], T3) = %v, want itself", got)
	}
	if got := sp.PullBackward(r1y, 3); got != r1y {
		t.Errorf("PullBackward(r1[y], T3) = %v, want itself", got)
	}
}

func TestSpecSetUnitsValidation(t *testing.T) {
	ts := core.MustTxnSet(core.T(1, core.R("x"), core.W("x")), core.T(2, core.R("y")))
	sp := core.NewSpec(ts)
	cases := []struct {
		name string
		err  error
	}{
		{"wrong sum", sp.SetUnits(1, 2, 1, 2)},
		{"zero unit", sp.SetUnits(1, 2, 0, 2)},
		{"self pair", sp.SetUnits(1, 1, 2)},
		{"unknown i", sp.SetUnits(9, 2, 1)},
		{"unknown j", sp.SetUnits(1, 9, 2)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSpecCutAfter(t *testing.T) {
	ts := core.MustTxnSet(core.T(1, core.R("a"), core.R("b"), core.R("c")), core.T(2, core.W("a")))
	sp := core.NewSpec(ts)
	if err := sp.CutAfter(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if n := sp.NumUnits(1, 2); n != 2 {
		t.Fatalf("NumUnits = %d after one cut", n)
	}
	// Duplicate cut is a no-op.
	if err := sp.CutAfter(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if n := sp.NumUnits(1, 2); n != 2 {
		t.Fatalf("NumUnits = %d after duplicate cut", n)
	}
	// Cut after last operation is a no-op.
	if err := sp.CutAfter(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if n := sp.NumUnits(1, 2); n != 2 {
		t.Fatalf("NumUnits = %d after trailing cut", n)
	}
	// Out-of-order cuts keep sorted unit boundaries.
	if err := sp.CutAfter(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	s, e := sp.Unit(1, 2, 1)
	if s != 1 || e != 1 {
		t.Errorf("middle unit = [%d,%d], want [1,1]", s, e)
	}
	if err := sp.CutAfter(1, 2, 7); err == nil {
		t.Error("out-of-range cut accepted")
	}
}

func TestSpecAllowAll(t *testing.T) {
	ts := core.MustTxnSet(core.T(1, core.R("a"), core.R("b"), core.R("c")), core.T(2, core.W("a")))
	sp := core.NewSpec(ts)
	if err := sp.AllowAll(1, 2); err != nil {
		t.Fatal(err)
	}
	if n := sp.NumUnits(1, 2); n != 3 {
		t.Fatalf("NumUnits = %d, want 3 singleton units", n)
	}
	sp2 := core.NewSpec(ts)
	sp2.AllowAllPairs()
	if sp2.NumUnits(1, 2) != 3 || sp2.NumUnits(2, 1) != 1 {
		t.Error("AllowAllPairs wrong (T2 has one op, so one unit)")
	}
}

func TestSpecClone(t *testing.T) {
	inst := paperfig.Figure1()
	clone := inst.Spec.Clone()
	if err := clone.AllowAll(1, 2); err != nil {
		t.Fatal(err)
	}
	if inst.Spec.NumUnits(1, 2) != 2 {
		t.Error("mutating clone affected original")
	}
	if clone.NumUnits(1, 2) != 4 {
		t.Error("clone mutation lost")
	}
}

func TestSpecString(t *testing.T) {
	inst := paperfig.Figure2()
	out := inst.Spec.String()
	for _, want := range []string{
		"Atomicity(T1, T3): [w1[x]] [r1[z]]",
		"Atomicity(T3, T1): [r3[y]] [w3[z]]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Spec.String missing %q:\n%s", want, out)
		}
	}
	// Absolute pairs are omitted.
	if strings.Contains(out, "Atomicity(T1, T2)") {
		t.Errorf("absolute pair should be omitted:\n%s", out)
	}
	abs := core.NewSpec(inst.Set)
	if abs.String() != "(absolute atomicity)" {
		t.Errorf("absolute spec renders %q", abs.String())
	}
}

func TestSpecLatticeOps(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("a"), core.R("b"), core.R("c")),
		core.T(2, core.W("a")),
	)
	a := core.NewSpec(ts)
	if err := a.CutAfter(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	b := core.NewSpec(ts)
	if err := b.CutAfter(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.CutAfter(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	join := a.Refine(b)
	if join.NumUnits(1, 2) != 3 {
		t.Errorf("join units = %d, want 3", join.NumUnits(1, 2))
	}
	meet := a.Coarsen(b)
	if meet.NumUnits(1, 2) != 2 {
		t.Errorf("meet units = %d, want 2 (shared cut only)", meet.NumUnits(1, 2))
	}
	if !join.RefinesOrEquals(a) || !join.RefinesOrEquals(b) {
		t.Error("join must refine both operands")
	}
	if !a.RefinesOrEquals(meet) || !b.RefinesOrEquals(meet) {
		t.Error("both operands must refine the meet")
	}
	if a.RefinesOrEquals(b) {
		t.Error("a lacks b's second cut")
	}
	// Inputs untouched.
	if a.NumUnits(1, 2) != 2 || b.NumUnits(1, 2) != 3 {
		t.Error("lattice ops mutated their inputs")
	}
}

func TestSpecRefinementMonotoneAdmission(t *testing.T) {
	// Property: if spec A refines spec B, every schedule B admits, A
	// admits (the offline face of protocol monotonicity).
	inst := paperfig.Figure1()
	coarse := core.NewSpec(inst.Set) // absolute
	fine := inst.Spec.Refine(coarse) // = inst.Spec
	if !fine.RefinesOrEquals(coarse) {
		t.Fatal("any spec refines the absolute one")
	}
	for _, name := range inst.Names {
		s := inst.Schedules[name]
		if core.IsRelativelySerializable(s, coarse) && !core.IsRelativelySerializable(s, fine) {
			t.Errorf("%s: coarse admits but fine rejects (monotonicity violated)", name)
		}
	}
}
