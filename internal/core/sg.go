package core

import (
	"fmt"

	"relser/internal/graph"
)

// SG is the classical serialization graph of a schedule [Pap79, BSW79]:
// one vertex per transaction and an arc Ti -> Tk whenever an operation
// of Ti conflicts with and precedes an operation of Tk.
type SG struct {
	s     *Schedule
	g     *graph.Dense
	ids   []TxnID // dense vertex -> transaction ID
	vtxOf map[TxnID]int
}

// BuildSG constructs the serialization graph of the schedule.
func BuildSG(s *Schedule) *SG {
	ts := s.Set()
	sg := &SG{
		s:     s,
		g:     graph.NewDense(ts.NumTxns()),
		ids:   make([]TxnID, ts.NumTxns()),
		vtxOf: make(map[TxnID]int, ts.NumTxns()),
	}
	for i, t := range ts.Txns() {
		sg.ids[i] = t.ID
		sg.vtxOf[t.ID] = i
	}
	// Conflicts are same-object, so scanning pairs within each object's
	// access history yields exactly the arcs of the definition without
	// an all-pairs sweep over the schedule.
	history := make(map[string][]Op)
	for pos := 0; pos < s.Len(); pos++ {
		o := s.At(pos)
		history[o.Object] = append(history[o.Object], o)
	}
	for _, ops := range history {
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				if ops[i].ConflictsWith(ops[j]) {
					sg.g.AddArc(sg.vtxOf[ops[i].Txn], sg.vtxOf[ops[j].Txn])
				}
			}
		}
	}
	return sg
}

// HasArc reports whether the serialization graph contains Ti -> Tk.
func (sg *SG) HasArc(i, k TxnID) bool {
	vi, ok1 := sg.vtxOf[i]
	vk, ok2 := sg.vtxOf[k]
	return ok1 && ok2 && sg.g.HasArc(vi, vk)
}

// Acyclic reports whether the serialization graph is acyclic, i.e.
// whether the schedule is conflict serializable.
func (sg *SG) Acyclic() bool { return !sg.g.HasCycle() }

// Cycle returns the transactions of one cycle, or nil if acyclic.
func (sg *SG) Cycle() []TxnID {
	cyc := sg.g.FindCycle()
	if cyc == nil {
		return nil
	}
	out := make([]TxnID, len(cyc))
	for i, v := range cyc {
		out[i] = sg.ids[v]
	}
	return out
}

// SerializationOrder returns a serial order of the transactions that is
// conflict equivalent to the schedule, or (nil, false) if none exists.
func (sg *SG) SerializationOrder() ([]TxnID, bool) {
	order, ok := sg.g.TopoOrder()
	if !ok {
		return nil, false
	}
	out := make([]TxnID, len(order))
	for i, v := range order {
		out[i] = sg.ids[v]
	}
	return out, true
}

// Dot renders the serialization graph in Graphviz DOT format.
func (sg *SG) Dot(name string) string {
	var d graph.DotGraph
	d.Name = name
	for v, id := range sg.ids {
		d.AddNode(v, fmt.Sprintf("T%d", int(id)), map[string]string{"shape": "circle"})
	}
	sg.g.Arcs(func(u, v int) bool {
		d.AddEdge(u, v, "", nil)
		return true
	})
	return d.String()
}

// IsConflictSerializable reports whether the schedule is conflict
// equivalent to some serial schedule (serialization graph acyclic).
func IsConflictSerializable(s *Schedule) bool { return BuildSG(s).Acyclic() }

// SerialWitness returns a serial schedule conflict equivalent to s, or
// an error if s is not conflict serializable.
func SerialWitness(s *Schedule) (*Schedule, error) {
	order, ok := BuildSG(s).SerializationOrder()
	if !ok {
		return nil, fmt.Errorf("core: schedule is not conflict serializable")
	}
	return SerialSchedule(s.Set(), order...)
}
