package core_test

import (
	"os"
	"path/filepath"
	"testing"

	"relser/internal/core"
	"relser/internal/enumerate"
)

// TestInstanceCorpus classifies every schedule of the testdata corpus
// and pins the expected class memberships — an end-to-end regression
// net over parser, specification machinery and all class tests at
// once.
func TestInstanceCorpus(t *testing.T) {
	type want struct {
		ra, rs, rser, csr bool
	}
	expect := map[string]map[string]want{
		"fig1.txt": {
			"Sra": {ra: true, rs: true, rser: true, csr: false},
			"Srs": {ra: false, rs: true, rser: true, csr: false},
			"S2":  {ra: false, rs: false, rser: true, csr: false},
		},
		"crossing_audits.txt": {
			"W": {ra: true, rs: true, rser: true, csr: false},
		},
		// With only T2's read-modify-write opened to T1, the lost
		// update is relatively SERIALIZABLE (conflict equivalent to an
		// interleaving that respects the units) without being
		// relatively serial itself — the RS/RSer gap in miniature.
		"lostupdate.txt": {
			"LU": {ra: false, rs: false, rser: true, csr: false},
		},
		"chopped.txt": {
			"P": {ra: true, rs: true, rser: true, csr: true},
		},
	}
	for file, schedules := range expect {
		t.Run(file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", "instances", file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			inst, err := core.ParseInstance(f)
			if err != nil {
				t.Fatal(err)
			}
			for name, w := range schedules {
				s := inst.Schedules[name]
				if s == nil {
					t.Fatalf("schedule %q missing", name)
				}
				c := enumerate.Classify(s, inst.Spec, false)
				if c.RelativelyAtomic != w.ra {
					t.Errorf("%s: relatively atomic = %v, want %v", name, c.RelativelyAtomic, w.ra)
				}
				if c.RelativelySerial != w.rs {
					t.Errorf("%s: relatively serial = %v, want %v", name, c.RelativelySerial, w.rs)
				}
				if c.RelativelySerializable != w.rser {
					t.Errorf("%s: relatively serializable = %v, want %v", name, c.RelativelySerializable, w.rser)
				}
				if c.ConflictSerializable != w.csr {
					t.Errorf("%s: conflict serializable = %v, want %v", name, c.ConflictSerializable, w.csr)
				}
			}
		})
	}
}
