// Package core implements the transaction model and the theory of
// "Relative Serializability: An Approach for Relaxing the Atomicity of
// Transactions" (Agrawal, Bruno, El Abbadi, Krishnaswamy; PODS 1994).
//
// The package provides:
//
//   - the read/write transaction model of §2 (operations, transactions,
//     schedules, conflicts, conflict equivalence);
//   - relative atomicity specifications: per ordered transaction pair
//     (Ti, Tj), a partition of Ti's operations into atomic units
//     (Atomicity(Ti, Tj));
//   - the depends-on relation (transitive closure of program order and
//     conflicts restricted to schedule precedence);
//   - the schedule classes of the paper: serial, relatively atomic
//     (Definition 1), relatively serial (Definition 2), conflict
//     serializable, and relatively serializable;
//   - the relative serialization graph RSG(S) of Definition 3, whose
//     acyclicity is a necessary and sufficient condition for relative
//     serializability (Theorem 1), together with a constructive witness
//     extraction via topological sorting;
//   - parsers and formatters for the paper's r1[x]/w2[y] notation.
package core

import "fmt"

// TxnID identifies a transaction. IDs are positive and follow the
// paper's subscripts: transaction T3's operations print as r3[x].
type TxnID int

// OpKind distinguishes read and write operations.
type OpKind uint8

const (
	// ReadOp is an atomic read of one object.
	ReadOp OpKind = iota
	// WriteOp is an atomic write of one object.
	WriteOp
)

// String returns "r" or "w".
func (k OpKind) String() string {
	switch k {
	case ReadOp:
		return "r"
	case WriteOp:
		return "w"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one read or write operation issued by a transaction. Seq is
// the operation's 0-based position within its transaction's program;
// together (Txn, Seq) identify an operation instance uniquely within a
// TxnSet.
type Op struct {
	Txn    TxnID
	Seq    int
	Kind   OpKind
	Object string
}

// String renders the paper's notation, e.g. "r1[x]" or "w3[z]".
func (o Op) String() string {
	return fmt.Sprintf("%s%d[%s]", o.Kind, int(o.Txn), o.Object)
}

// ConflictsWith reports whether o and p conflict: they belong to
// different transactions, access the same object, and at least one of
// them is a write (§2).
func (o Op) ConflictsWith(p Op) bool {
	return o.Txn != p.Txn && o.Object == p.Object && (o.Kind == WriteOp || p.Kind == WriteOp)
}

// SameOp reports whether o and p denote the same operation instance.
func (o Op) SameOp(p Op) bool { return o.Txn == p.Txn && o.Seq == p.Seq }

// R constructs a read operation on object; Txn and Seq are assigned
// when the operation is placed into a transaction via T or
// Transaction builders.
func R(object string) Op { return Op{Kind: ReadOp, Object: object} }

// W constructs a write operation on object, to be placed into a
// transaction via T.
func W(object string) Op { return Op{Kind: WriteOp, Object: object} }
