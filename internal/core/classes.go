package core

import "fmt"

// Violation explains why a schedule fails a relative atomicity class
// test: operation Op of transaction Op.Txn is interleaved with the
// atomic unit [UnitStart, UnitEnd] (sequence bounds) of transaction
// Unit relative to Op.Txn. For relatively-serial violations, Dep is the
// unit operation involved in a depends-on relationship with Op and
// DepForward reports its direction (true when Dep-depends-on-Op would
// read "Op's effects flow into the unit", i.e. Dep depends on Op).
type Violation struct {
	Op         Op
	Unit       TxnID
	UnitStart  int
	UnitEnd    int
	Dep        Op
	HasDep     bool
	DepForward bool
}

// Error renders the violation for diagnostics.
func (v *Violation) Error() string {
	if !v.HasDep {
		return fmt.Sprintf("core: %v interleaves AtomicUnit(T%d[%d..%d], relative to T%d)",
			v.Op, v.Unit, v.UnitStart, v.UnitEnd, v.Op.Txn)
	}
	dir := "depends on"
	subject, object := v.Dep, v.Op
	if !v.DepForward {
		subject, object = v.Op, v.Dep
	}
	return fmt.Sprintf("core: %v interleaves AtomicUnit(T%d[%d..%d], relative to T%d) and %v %s %v",
		v.Op, v.Unit, v.UnitStart, v.UnitEnd, v.Op.Txn, subject, dir, object)
}

// IsRelativelyAtomic implements Definition 1: S is relatively atomic if
// for all transactions Ti and Tl, no operation of Ti is interleaved
// with any AtomicUnit(k, Tl, Ti). This is Farrag and Özsu's class of
// "correct" schedules. The second return value describes the first
// violation found (in schedule order of the offending operation), or
// nil.
func IsRelativelyAtomic(s *Schedule, sp *Spec) (bool, *Violation) {
	return checkInterleavings(s, sp, nil)
}

// IsRelativelySerial implements Definition 2: an operation may be
// interleaved with an atomic unit provided no depends-on relationship
// exists, in either direction, between the operation and any operation
// of the unit. The depends-on relation is computed from s.
func IsRelativelySerial(s *Schedule, sp *Spec) (bool, *Violation) {
	return checkInterleavings(s, sp, ComputeDepends(s))
}

// IsRelativelySerialUnder is IsRelativelySerial with a caller-supplied
// depends-on relation. Passing ComputeDirectDepends(s) yields the
// Figure 2 ablation (direct conflicts only), which the paper shows is
// unsound.
func IsRelativelySerialUnder(s *Schedule, sp *Spec, d *Depends) (bool, *Violation) {
	if d.Schedule() != s {
		panic("core: depends-on relation computed from a different schedule")
	}
	return checkInterleavings(s, sp, d)
}

// checkInterleavings scans every (unit, operation) interleaving. With
// d == nil any interleaving is a violation (Definition 1); otherwise an
// interleaving violates only if a depends-on relationship exists in
// either direction between the operation and some unit operation
// (Definition 2).
func checkInterleavings(s *Schedule, sp *Spec, d *Depends) (bool, *Violation) {
	ts := s.Set()
	var firstViol *Violation
	record := func(v *Violation) {
		if firstViol == nil || s.Pos(v.Op) < s.Pos(firstViol.Op) ||
			(s.Pos(v.Op) == s.Pos(firstViol.Op) && v.Unit < firstViol.Unit) {
			firstViol = v
		}
	}
	for _, tl := range ts.Txns() {
		for _, ti := range ts.Txns() {
			if tl.ID == ti.ID {
				continue
			}
			// Units of Tl relative to Ti; operations of Ti may not
			// interleave them.
			for k := 0; k < sp.NumUnits(tl.ID, ti.ID); k++ {
				us, ue := sp.Unit(tl.ID, ti.ID, k)
				// Unit operations appear in program order, so the unit's
				// schedule span is [pos(first), pos(last)].
				lo := s.Pos(tl.Op(us))
				hi := s.Pos(tl.Op(ue))
				if hi-lo <= 1 {
					continue // nothing can be strictly inside
				}
				for _, oij := range ti.Ops {
					p := s.Pos(oij)
					if p <= lo || p >= hi {
						continue
					}
					if d == nil {
						record(&Violation{Op: oij, Unit: tl.ID, UnitStart: us, UnitEnd: ue})
						continue
					}
					for m := us; m <= ue; m++ {
						olm := tl.Op(m)
						if d.DependsOn(oij, olm) {
							record(&Violation{Op: oij, Unit: tl.ID, UnitStart: us, UnitEnd: ue, Dep: olm, HasDep: true, DepForward: false})
							break
						}
						if d.DependsOn(olm, oij) {
							record(&Violation{Op: oij, Unit: tl.ID, UnitStart: us, UnitEnd: ue, Dep: olm, HasDep: true, DepForward: true})
							break
						}
					}
				}
			}
		}
	}
	return firstViol == nil, firstViol
}
