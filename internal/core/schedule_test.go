package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

func fig1Set(t *testing.T) *core.TxnSet {
	t.Helper()
	return paperfig.Figure1().Set
}

func TestScheduleConstruction(t *testing.T) {
	inst := paperfig.Figure1()
	sra := inst.Schedules["Sra"]
	if sra.Len() != 10 {
		t.Fatalf("Sra length = %d", sra.Len())
	}
	want := "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]"
	if got := sra.String(); got != want {
		t.Errorf("Sra = %q, want %q", got, want)
	}
	// Positions round-trip.
	for pos := 0; pos < sra.Len(); pos++ {
		if sra.Pos(sra.At(pos)) != pos {
			t.Errorf("position round-trip broken at %d", pos)
		}
	}
	if !sra.Precedes(sra.At(0), sra.At(9)) || sra.Precedes(sra.At(9), sra.At(0)) {
		t.Error("Precedes wrong")
	}
}

func TestScheduleValidationErrors(t *testing.T) {
	ts := fig1Set(t)
	cases := []struct {
		name, text, want string
	}{
		{"missing ops", "r1[x] w1[x]", "has 2 operations"},
		{"unknown txn", "r9[x] r1[x] w1[x] w1[z] r1[y] r2[y] w2[y] r2[x] w3[x] w3[y]", "unknown transaction"},
		{"wrong op shape", "w1[x] r1[x] w1[z] r1[y] r2[y] w2[y] r2[x] w3[x] w3[y] w3[z]", "program order expects"},
		{"duplicate op", "r1[x] r1[x] w1[x] w1[z] r2[y] w2[y] r2[x] w3[x] w3[y] w3[z]", "program order expects"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := core.ParseSchedule(ts, tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestSerialSchedule(t *testing.T) {
	ts := fig1Set(t)
	s, err := core.SerialSchedule(ts, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := "r2[y] w2[y] r2[x] w3[x] w3[y] w3[z] r1[x] w1[x] w1[z] r1[y]"
	if got := s.String(); got != want {
		t.Errorf("serial = %q, want %q", got, want)
	}
	if !s.IsSerial() {
		t.Error("serial schedule not recognized as serial")
	}
	// Default order is ascending IDs.
	d, err := core.SerialSchedule(ts)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0).Txn != 1 || d.At(9).Txn != 3 {
		t.Error("default serial order should be ascending IDs")
	}
}

func TestSerialScheduleErrors(t *testing.T) {
	ts := fig1Set(t)
	if _, err := core.SerialSchedule(ts, 1, 2); err == nil {
		t.Error("short order accepted")
	}
	if _, err := core.SerialSchedule(ts, 1, 2, 9); err == nil {
		t.Error("unknown transaction accepted")
	}
	if _, err := core.SerialSchedule(ts, 1, 2, 2); err == nil {
		t.Error("repeated transaction accepted")
	}
}

func TestIsSerial(t *testing.T) {
	inst := paperfig.Figure1()
	if inst.Schedules["Sra"].IsSerial() {
		t.Error("Sra is interleaved, not serial")
	}
	if inst.Schedules["Srs"].IsSerial() {
		t.Error("Srs is interleaved, not serial")
	}
}

func TestConflictPairs(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.W("x"), core.R("z")),
		core.T(2, core.R("x"), core.W("y")),
	)
	s := core.MustSchedule(ts, mustOps(t, ts, "w1[x] r2[x] w2[y] r1[z]"))
	pairs := s.ConflictPairs()
	if len(pairs) != 1 {
		t.Fatalf("ConflictPairs = %v, want exactly one", pairs)
	}
	if pairs[0].First.String() != "w1[x]" || pairs[0].Second.String() != "r2[x]" {
		t.Errorf("pair = %v -> %v", pairs[0].First, pairs[0].Second)
	}
}

func TestConflictEquivalentPaper(t *testing.T) {
	inst := paperfig.Figure1()
	srs, s2 := inst.Schedules["Srs"], inst.Schedules["S2"]
	// §2: "S2 is relatively serializable since it is conflict
	// equivalent to the relatively serial schedule Srs".
	if !core.ConflictEquivalent(s2, srs) {
		t.Error("paper claims S2 ≡c Srs")
	}
	if !core.ConflictEquivalent(srs, s2) {
		t.Error("conflict equivalence must be symmetric")
	}
	sra := inst.Schedules["Sra"]
	// Sra orders r2[x] before w3[x]; Srs orders them the other way.
	if core.ConflictEquivalent(sra, srs) {
		t.Error("Sra and Srs order the (r2[x], w3[x]) conflict differently; must not be equivalent")
	}
	if !core.ConflictEquivalent(sra, sra) {
		t.Error("a schedule must be conflict equivalent to itself")
	}
}

func TestConflictEquivalentAcrossSets(t *testing.T) {
	a := paperfig.Figure1().Schedules["Srs"]
	b := paperfig.Figure1().Schedules["S2"] // distinct TxnSet pointer, same universe
	if !core.ConflictEquivalent(a, b) {
		t.Error("structurally identical sets should compare equal")
	}
	c := paperfig.Figure2().Schedules["S1"]
	if core.ConflictEquivalent(a, c) {
		t.Error("schedules over different universes can never be equivalent")
	}
}

func mustOps(t *testing.T, ts *core.TxnSet, text string) []core.Op {
	t.Helper()
	ops, err := core.ParseOps(text)
	if err != nil {
		t.Fatal(err)
	}
	_ = ts
	return ops
}
