package core_test

import (
	"strings"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

func TestParseOp(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"r1[x]", "r1[x]", true},
		{"w12[acct_7]", "w12[acct_7]", true},
		{"R3[Z]", "r3[Z]", true},
		{"W2[a.b-c]", "w2[a.b-c]", true},
		{"x1[x]", "", false},
		{"r[x]", "", false},
		{"r0[x]", "", false},
		{"r1[]", "", false},
		{"r1[x", "", false},
		{"r1[a b]", "", false},
		{"r1", "", false},
		{"", "", false},
	}
	for _, tc := range cases {
		op, err := core.ParseOp(tc.in)
		if tc.ok {
			if err != nil {
				t.Errorf("ParseOp(%q): %v", tc.in, err)
			} else if op.String() != tc.want {
				t.Errorf("ParseOp(%q) = %v, want %s", tc.in, op, tc.want)
			}
		} else if err == nil {
			t.Errorf("ParseOp(%q) accepted, want error", tc.in)
		}
	}
}

func TestParseOpsAndScheduleRoundTrip(t *testing.T) {
	inst := paperfig.Figure1()
	for _, name := range inst.Names {
		s := inst.Schedules[name]
		parsed, err := core.ParseSchedule(inst.Set, s.String())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if parsed.String() != s.String() {
			t.Errorf("%s: round trip changed schedule", name)
		}
	}
}

func TestParseTxn(t *testing.T) {
	tx, err := core.ParseTxn(2, "r[y] w[y] r[x]")
	if err != nil {
		t.Fatal(err)
	}
	if tx.String() != "r2[y] w2[y] r2[x]" {
		t.Errorf("ParseTxn = %q", tx)
	}
	// Subscripted form accepted when it matches.
	tx2, err := core.ParseTxn(2, "r2[y] w2[y]")
	if err != nil {
		t.Fatal(err)
	}
	if tx2.Len() != 2 {
		t.Error("subscripted parse wrong")
	}
	if _, err := core.ParseTxn(2, "r3[y]"); err == nil {
		t.Error("mismatched subscript accepted")
	}
	if _, err := core.ParseTxn(2, ""); err == nil {
		t.Error("empty transaction accepted")
	}
}

const fig1Text = `
# Figure 1 of the paper.
txn 1: r[x] w[x] w[z] r[y]
txn 2: r[y] w[y] r[x]
txn 3: w[x] w[y] w[z]
atomicity 1 2: [r[x] w[x]] [w[z] r[y]]
atomicity 1 3: [r[x] w[x]] [w[z]] [r[y]]
atomicity 2 1: [r[y]] [w[y] r[x]]
atomicity 2 3: [r[y] w[y]] [r[x]]
atomicity 3 1: [w[x] w[y]] [w[z]]
atomicity 3 2: [w[x] w[y]] [w[z]]
schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]
schedule Srs: r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]
`

func TestParseInstanceFigure1(t *testing.T) {
	inst, err := core.ParseInstance(strings.NewReader(fig1Text))
	if err != nil {
		t.Fatal(err)
	}
	ref := paperfig.Figure1()
	if inst.Set.String() != ref.Set.String() {
		t.Errorf("parsed set:\n%s\nwant:\n%s", inst.Set, ref.Set)
	}
	if inst.Spec.String() != ref.Spec.String() {
		t.Errorf("parsed spec:\n%s\nwant:\n%s", inst.Spec, ref.Spec)
	}
	for _, name := range []string{"Sra", "Srs"} {
		if inst.Schedules[name].String() != ref.Schedules[name].String() {
			t.Errorf("schedule %s mismatch", name)
		}
	}
	if len(inst.Names) != 2 || inst.Names[0] != "Sra" {
		t.Errorf("Names = %v", inst.Names)
	}
	// Semantics carried over: Sra is relatively atomic.
	if ok, v := core.IsRelativelyAtomic(inst.Schedules["Sra"], inst.Spec); !ok {
		t.Errorf("parsed Sra should be relatively atomic: %v", v)
	}
}

func TestParseInstanceAllowAll(t *testing.T) {
	text := `
txn 1: r[a] r[b]
txn 2: w[a]
allowall 1 2
schedule S: r1[a] w2[a] r1[b]
`
	inst, err := core.ParseInstance(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Spec.NumUnits(1, 2) != 2 {
		t.Errorf("allowall should split T1 into 2 singleton units")
	}
	if ok, v := core.IsRelativelyAtomic(inst.Schedules["S"], inst.Spec); !ok {
		t.Errorf("S should be relatively atomic under allowall: %v", v)
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"unknown directive", "frobnicate 1 2", "unknown directive"},
		{"txn after schedule", "txn 1: r[x]\nschedule S: r1[x]\ntxn 2: w[y]", "txn directive after"},
		{"bad txn id", "txn zero: r[x]", "invalid transaction id"},
		{"missing colon", "txn 1 r[x]", "needs"},
		{"bad atomicity ids", "txn 1: r[x] w[y]\natomicity one 2: [r[x] w[y]]", "invalid atomicity ids"},
		{"unit mismatch", "txn 1: r[x] w[y]\ntxn 2: r[z]\natomicity 1 2: [r[x]] [r[y]]", "does not match"},
		{"units short", "txn 1: r[x] w[y]\ntxn 2: r[z]\natomicity 1 2: [r[x]]", "cover 1"},
		{"units long", "txn 1: r[x]\ntxn 2: r[z]\natomicity 1 2: [r[x] w[y]]", "exceed"},
		{"unterminated unit", "txn 1: r[x]\ntxn 2: r[z]\natomicity 1 2: [r[x]", "unterminated"},
		{"empty unit", "txn 1: r[x]\ntxn 2: r[z]\natomicity 1 2: [] [r[x]]", "empty atomic unit"},
		{"unknown atomicity txn", "txn 1: r[x]\ntxn 2: r[z]\natomicity 7 1: [r[x]]", "unknown transaction"},
		{"dup schedule", "txn 1: r[x]\nschedule S: r1[x]\nschedule S: r1[x]", "duplicate schedule"},
		{"nameless schedule", "txn 1: r[x]\nschedule : r1[x]", "needs a name"},
		{"bad schedule", "txn 1: r[x]\nschedule S: r1[x] r1[x]", "schedule has 2"},
		{"allowall arity", "txn 1: r[x]\ntxn 2: r[y]\nallowall 1", "allowall needs"},
		{"allowall ids", "txn 1: r[x]\ntxn 2: r[y]\nallowall a b", "invalid allowall ids"},
		{"no transactions", "schedule S: r1[x]", "empty transaction set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := core.ParseInstance(strings.NewReader(tc.text))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestFormatInstanceRoundTrip(t *testing.T) {
	for _, named := range paperfig.All() {
		text := core.FormatInstance(named.Instance)
		back, err := core.ParseInstance(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", named.Name, err, text)
		}
		if back.Set.String() != named.Instance.Set.String() {
			t.Errorf("%s: set round trip mismatch", named.Name)
		}
		if back.Spec.String() != named.Instance.Spec.String() {
			t.Errorf("%s: spec round trip mismatch", named.Name)
		}
		for name, s := range named.Instance.Schedules {
			if back.Schedules[name] == nil || back.Schedules[name].String() != s.String() {
				t.Errorf("%s: schedule %s round trip mismatch", named.Name, name)
			}
		}
	}
}

func TestParseInstanceComments(t *testing.T) {
	text := "# only comments\n\n   \n# more\ntxn 1: r[x]  # trailing comment\n"
	inst, err := core.ParseInstance(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Set.NumTxns() != 1 {
		t.Errorf("NumTxns = %d", inst.Set.NumTxns())
	}
}
