package core_test

// Property-based tests (testing/quick) over randomly generated
// instances: transaction sets, relative atomicity specifications and
// schedules. Each property takes a generator seed from quick and
// derives the instance deterministically, so failures reproduce.

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relser/internal/core"
)

// genInstance derives a random transaction set, specification and
// schedule from a seed.
func genInstance(seed int64) (*core.TxnSet, *core.Spec, *core.Schedule) {
	rng := rand.New(rand.NewSource(seed))
	objects := []string{"x", "y", "z", "u"}
	nTxn := 2 + rng.Intn(3)
	txns := make([]*core.Transaction, nTxn)
	for i := range txns {
		nOps := 1 + rng.Intn(4)
		ops := make([]core.Op, nOps)
		for k := range ops {
			obj := objects[rng.Intn(len(objects))]
			if rng.Intn(2) == 0 {
				ops[k] = core.R(obj)
			} else {
				ops[k] = core.W(obj)
			}
		}
		txns[i] = core.T(core.TxnID(i+1), ops...)
	}
	ts := core.MustTxnSet(txns...)
	sp := core.NewSpec(ts)
	for _, a := range txns {
		for _, b := range txns {
			if a.ID == b.ID {
				continue
			}
			// Random cut pattern: each interior boundary independently.
			for p := 0; p+1 < a.Len(); p++ {
				if rng.Intn(3) == 0 {
					if err := sp.CutAfter(a.ID, b.ID, p); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	return ts, sp, randomSchedule(rng, ts)
}

func quickCfg(max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(2026))}
}

// Property: the class hierarchy of Figure 5 holds pointwise on random
// instances: serial ⇒ RA ⇒ RS ⇒ RSer.
func TestPropertyClassHierarchy(t *testing.T) {
	f := func(seed int64) bool {
		_, sp, s := genInstance(seed)
		serial := s.IsSerial()
		ra, _ := core.IsRelativelyAtomic(s, sp)
		rs, _ := core.IsRelativelySerial(s, sp)
		rser := core.IsRelativelySerializable(s, sp)
		if serial && !ra {
			return false
		}
		if ra && !rs {
			return false
		}
		if rs && !rser {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg(300)); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 1 roundtrip — whenever the RSG is acyclic, its
// topological witness is conflict equivalent to the schedule and
// relatively serial; whenever it is cyclic, the schedule is not
// relatively serial (Lemma 2 contrapositive).
func TestPropertyTheorem1Roundtrip(t *testing.T) {
	f := func(seed int64) bool {
		_, sp, s := genInstance(seed)
		rsg := core.BuildRSG(s, sp)
		if rsg.Acyclic() {
			w, err := rsg.Witness()
			if err != nil {
				return false
			}
			if !core.ConflictEquivalent(w, s) {
				return false
			}
			ok, _ := core.IsRelativelySerial(w, sp)
			return ok
		}
		ok, _ := core.IsRelativelySerial(s, sp)
		return !ok
	}
	if err := quick.Check(f, quickCfg(300)); err != nil {
		t.Error(err)
	}
}

// Property: the witness is idempotent — re-deriving the witness of a
// witness returns the witness itself (it is already relatively serial
// and the topological sort prefers the original order).
func TestPropertyWitnessIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		_, sp, s := genInstance(seed)
		rsg := core.BuildRSG(s, sp)
		if !rsg.Acyclic() {
			return true
		}
		w, err := rsg.Witness()
		if err != nil {
			return false
		}
		w2, err := core.BuildRSG(w, sp).Witness()
		if err != nil {
			return false
		}
		return w2.String() == w.String()
	}
	if err := quick.Check(f, quickCfg(200)); err != nil {
		t.Error(err)
	}
}

// Property: depends-on is transitive and respects schedule order.
func TestPropertyDependsTransitive(t *testing.T) {
	f := func(seed int64) bool {
		_, _, s := genInstance(seed)
		d := core.ComputeDepends(s)
		n := s.Len()
		for c := 0; c < n; c++ {
			for b := 0; b < c; b++ {
				if !d.DependsOnPos(c, b) {
					continue
				}
				for a := 0; a < b; a++ {
					if d.DependsOnPos(b, a) && !d.DependsOnPos(c, a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(150)); err != nil {
		t.Error(err)
	}
}

// Property: spec units tile each transaction exactly, and
// PushForward/PullBackward return the bounds of the unit containing
// the operation (so they are idempotent).
func TestPropertySpecUnits(t *testing.T) {
	f := func(seed int64) bool {
		ts, sp, _ := genInstance(seed)
		for _, a := range ts.Txns() {
			for _, b := range ts.Txns() {
				if a.ID == b.ID {
					continue
				}
				covered := 0
				for k := 0; k < sp.NumUnits(a.ID, b.ID); k++ {
					start, end := sp.Unit(a.ID, b.ID, k)
					if start > end || start != covered {
						return false
					}
					covered = end + 1
				}
				if covered != a.Len() {
					return false
				}
				for seq := 0; seq < a.Len(); seq++ {
					start, end := sp.UnitOf(a.ID, seq, b.ID)
					if seq < start || seq > end {
						return false
					}
					pf := sp.PushForward(a.Op(seq), b.ID)
					pb := sp.PullBackward(a.Op(seq), b.ID)
					if pf.Seq != end || pb.Seq != start {
						return false
					}
					if sp.PushForward(pf, b.ID) != pf || sp.PullBackward(pb, b.ID) != pb {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(150)); err != nil {
		t.Error(err)
	}
}

// Property: conflict equivalence is reflexive, and the serialization
// witness of a conflict-serializable schedule is conflict equivalent
// in both directions (symmetry on a nontrivial pair).
func TestPropertyConflictEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		_, _, s := genInstance(seed)
		if !core.ConflictEquivalent(s, s) {
			return false
		}
		if core.IsConflictSerializable(s) {
			w, err := core.SerialWitness(s)
			if err != nil {
				return false
			}
			if !core.ConflictEquivalent(s, w) || !core.ConflictEquivalent(w, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(200)); err != nil {
		t.Error(err)
	}
}

// Property: instance text round-trips through FormatInstance and
// ParseInstance.
func TestPropertyInstanceRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		ts, sp, s := genInstance(seed)
		inst := &core.Instance{
			Set:       ts,
			Spec:      sp,
			Schedules: map[string]*core.Schedule{"S": s},
			Names:     []string{"S"},
		}
		text := core.FormatInstance(inst)
		back, err := core.ParseInstance(strings.NewReader(text))
		if err != nil {
			return false
		}
		return back.Set.String() == ts.String() &&
			back.Spec.String() == sp.String() &&
			back.Schedules["S"].String() == s.String()
	}
	if err := quick.Check(f, quickCfg(150)); err != nil {
		t.Error(err)
	}
}

// Property: under absolute atomicity, relative serializability
// coincides with conflict serializability (Lemma 1, the E10 claim, at
// the unit-test level).
func TestPropertyLemma1(t *testing.T) {
	f := func(seed int64) bool {
		ts, _, s := genInstance(seed)
		abs := core.NewSpec(ts)
		return core.IsRelativelySerializable(s, abs) == core.IsConflictSerializable(s)
	}
	if err := quick.Check(f, quickCfg(300)); err != nil {
		t.Error(err)
	}
}

// Property: fully breakable specifications admit everything whose
// op-level dependency graph is consistent — in particular, every
// schedule is relatively ATOMIC under AllowAllPairs (no unit has two
// operations).
func TestPropertyAllowAllAdmitsEverything(t *testing.T) {
	f := func(seed int64) bool {
		ts, _, s := genInstance(seed)
		sp := core.NewSpec(ts)
		sp.AllowAllPairs()
		ra, _ := core.IsRelativelyAtomic(s, sp)
		return ra
	}
	if err := quick.Check(f, quickCfg(200)); err != nil {
		t.Error(err)
	}
}

// Property: the parser never accepts garbage it cannot round-trip —
// feeding random op tokens to ParseOp either errors or produces an op
// whose String() parses back to the same op.
func TestPropertyParseOpRoundTrip(t *testing.T) {
	f := func(raw string) bool {
		op, err := core.ParseOp(raw)
		if err != nil {
			return true // rejection is fine
		}
		back, err := core.ParseOp(op.String())
		return err == nil && back == op
	}
	if err := quick.Check(f, quickCfg(500)); err != nil {
		t.Error(err)
	}
}
