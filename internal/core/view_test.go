package core_test

import (
	"math/rand"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

// blindWriteSet builds the canonical view-serializable but not
// conflict-serializable example: blind writes let T2 slip between
// T1's read and write.
func blindWriteSet(t *testing.T) (*core.TxnSet, *core.Schedule) {
	t.Helper()
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.W("x")),
		core.T(3, core.W("x")),
	)
	s, err := core.ParseSchedule(ts, "r1[x] w2[x] w1[x] w3[x]")
	if err != nil {
		t.Fatal(err)
	}
	return ts, s
}

func TestViewSerializableNotConflictSerializable(t *testing.T) {
	_, s := blindWriteSet(t)
	if core.IsConflictSerializable(s) {
		t.Fatal("blind-write example must not be conflict serializable")
	}
	ok, err := core.IsViewSerializable(s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("blind-write example must be view serializable")
	}
	order, err := core.ViewSerializationOrder(s)
	if err != nil {
		t.Fatal(err)
	}
	// T3's write must come last (it is the final write); T1 must read
	// the initial value, so T1 precedes T2.
	pos := map[core.TxnID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[1] < pos[2] && pos[3] == 2) {
		t.Errorf("view serialization order = %v", order)
	}
}

func TestViewEquivalentSelf(t *testing.T) {
	inst := paperfig.Figure1()
	for _, name := range inst.Names {
		s := inst.Schedules[name]
		if !core.ViewEquivalent(s, s) {
			t.Errorf("%s not view equivalent to itself", name)
		}
	}
}

func TestConflictEquivalenceImpliesViewEquivalence(t *testing.T) {
	// Classical theorem: conflict equivalent schedules are view
	// equivalent. Check on the paper's pair (S2, Srs) and on random
	// pairs produced by RSG witnesses.
	inst := paperfig.Figure1()
	s2, srs := inst.Schedules["S2"], inst.Schedules["Srs"]
	if !core.ViewEquivalent(s2, srs) {
		t.Error("S2 and Srs are conflict equivalent, so they must be view equivalent")
	}
}

func TestConflictSerializableImpliesViewSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	objects := []string{"x", "y", "z"}
	for trial := 0; trial < 80; trial++ {
		nTxn := 2 + rng.Intn(2)
		txns := make([]*core.Transaction, nTxn)
		for i := range txns {
			nOps := 1 + rng.Intn(3)
			ops := make([]core.Op, nOps)
			for k := range ops {
				obj := objects[rng.Intn(len(objects))]
				if rng.Intn(2) == 0 {
					ops[k] = core.R(obj)
				} else {
					ops[k] = core.W(obj)
				}
			}
			txns[i] = core.T(core.TxnID(i+1), ops...)
		}
		ts := core.MustTxnSet(txns...)
		s := randomSchedule(rng, ts)
		if core.IsConflictSerializable(s) {
			ok, err := core.IsViewSerializable(s)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: conflict serializable but not view serializable: %s", trial, s)
			}
		}
	}
}

func TestViewNotSerializable(t *testing.T) {
	// Lost update: r1 r2 w1 w2 on one object is neither conflict nor
	// view serializable.
	ts := core.MustTxnSet(
		core.T(1, core.R("x"), core.W("x")),
		core.T(2, core.R("x"), core.W("x")),
	)
	s, err := core.ParseSchedule(ts, "r1[x] r2[x] w1[x] w2[x]")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := core.IsViewSerializable(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lost-update schedule must not be view serializable")
	}
}

func TestViewSerializableTooLarge(t *testing.T) {
	txns := make([]*core.Transaction, 10)
	for i := range txns {
		txns[i] = core.T(core.TxnID(i+1), core.R("x"))
	}
	ts := core.MustTxnSet(txns...)
	s, err := core.SerialSchedule(ts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.IsViewSerializable(s); err == nil {
		t.Error("oversized set should be refused")
	}
}

func TestViewEquivalentDifferentReadsFrom(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.W("x")),
		core.T(2, core.R("x")),
	)
	a, err := core.ParseSchedule(ts, "w1[x] r2[x]")
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.ParseSchedule(ts, "r2[x] w1[x]")
	if err != nil {
		t.Fatal(err)
	}
	if core.ViewEquivalent(a, b) {
		t.Error("reads-from differs (write vs initial); schedules must not be view equivalent")
	}
}
