package core_test

import (
	"math/rand"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

func TestDependsFigure2Transitivity(t *testing.T) {
	// §2, Figure 2: "w2[y] does not conflict with either w1[x] or
	// r1[z], but r1[z] is affected by w2[y]" — the dependency flows
	// w2[y] -> r3[y] -> w3[z] -> r1[z].
	inst := paperfig.Figure2()
	s := inst.Schedules["S1"]
	d := core.ComputeDepends(s)
	w1x := inst.Set.Txn(1).Op(0)
	r1z := inst.Set.Txn(1).Op(1)
	w2y := inst.Set.Txn(2).Op(0)
	r3y := inst.Set.Txn(3).Op(0)
	w3z := inst.Set.Txn(3).Op(1)

	if !d.DependsOn(r3y, w2y) {
		t.Error("r3[y] reads y after w2[y]: direct conflict dependency missing")
	}
	if !d.DependsOn(w3z, w2y) {
		t.Error("w3[z] follows r3[y] in T3: program-order + conflict dependency missing")
	}
	if !d.DependsOn(r1z, w2y) {
		t.Error("r1[z] must transitively depend on w2[y] (the figure's point)")
	}
	if !d.DependsOn(r1z, w3z) {
		t.Error("r1[z] reads z written by w3[z]")
	}
	if !d.DependsOn(r1z, w1x) {
		t.Error("r1[z] follows w1[x] in T1 (program order)")
	}
	if d.DependsOn(w2y, w1x) {
		t.Error("w2[y] has no dependency on w1[x]")
	}
	if d.DependsOn(w1x, w2y) {
		t.Error("dependencies never point backward in the schedule")
	}
}

func TestDirectDependsAblation(t *testing.T) {
	inst := paperfig.Figure2()
	s := inst.Schedules["S1"]
	direct := core.ComputeDirectDepends(s)
	if !direct.IsDirect() {
		t.Fatal("IsDirect should report true")
	}
	r1z := inst.Set.Txn(1).Op(1)
	w2y := inst.Set.Txn(2).Op(0)
	w3z := inst.Set.Txn(3).Op(1)
	if direct.DependsOn(r1z, w2y) {
		t.Error("direct relation must NOT relate r1[z] to w2[y] (no conflict, different txns)")
	}
	if !direct.DependsOn(r1z, w3z) {
		t.Error("direct relation must keep the immediate conflict w3[z] -> r1[z]")
	}
	full := core.ComputeDepends(s)
	if full.IsDirect() {
		t.Error("full relation must report IsDirect() == false")
	}
}

func TestDependsIrreflexiveAndOrdered(t *testing.T) {
	inst := paperfig.Figure1()
	s := inst.Schedules["Srs"]
	d := core.ComputeDepends(s)
	for pos := 0; pos < s.Len(); pos++ {
		op := s.At(pos)
		if d.DependsOn(op, op) {
			t.Errorf("%v depends on itself", op)
		}
		for q := pos + 1; q < s.Len(); q++ {
			if d.DependsOn(op, s.At(q)) {
				t.Errorf("%v depends on later operation %v", op, s.At(q))
			}
		}
	}
}

func TestDependsProgramOrder(t *testing.T) {
	inst := paperfig.Figure1()
	s := inst.Schedules["Sra"]
	d := core.ComputeDepends(s)
	for _, tx := range inst.Set.Txns() {
		for i := 0; i < tx.Len(); i++ {
			for j := i + 1; j < tx.Len(); j++ {
				if !d.DependsOn(tx.Op(j), tx.Op(i)) {
					t.Errorf("program order %v before %v not in depends-on", tx.Op(i), tx.Op(j))
				}
			}
		}
	}
}

// naiveDepends computes the depends-on relation by explicit transitive
// closure over all direct pairs, as the definition reads.
func naiveDepends(s *core.Schedule) [][]bool {
	n := s.Len()
	rel := make([][]bool, n)
	for i := range rel {
		rel[i] = make([]bool, n)
	}
	for q := 0; q < n; q++ {
		for p := 0; p < q; p++ {
			op, oq := s.At(p), s.At(q)
			if op.Txn == oq.Txn || op.ConflictsWith(oq) {
				rel[p][q] = true
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !rel[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if rel[k][j] {
					rel[i][j] = true
				}
			}
		}
	}
	return rel
}

func TestDependsMatchesNaiveClosureOnPaperSchedules(t *testing.T) {
	for _, named := range paperfig.All() {
		for _, name := range named.Instance.Names {
			s := named.Instance.Schedules[name]
			d := core.ComputeDepends(s)
			want := naiveDepends(s)
			for q := 0; q < s.Len(); q++ {
				for p := 0; p < s.Len(); p++ {
					got := d.DependsOnPos(q, p)
					if got != want[p][q] {
						t.Errorf("%s/%s: DependsOn(%v, %v) = %v, want %v",
							named.Name, name, s.At(q), s.At(p), got, want[p][q])
					}
				}
			}
		}
	}
}

func TestDependsMatchesNaiveClosureRandom(t *testing.T) {
	// Property: the covering-predecessor dynamic program equals the
	// naive transitive closure on random schedules.
	rng := rand.New(rand.NewSource(99))
	objects := []string{"x", "y", "z", "u"}
	for trial := 0; trial < 60; trial++ {
		nTxn := 2 + rng.Intn(3)
		txns := make([]*core.Transaction, nTxn)
		for i := range txns {
			nOps := 1 + rng.Intn(4)
			ops := make([]core.Op, nOps)
			for k := range ops {
				obj := objects[rng.Intn(len(objects))]
				if rng.Intn(2) == 0 {
					ops[k] = core.R(obj)
				} else {
					ops[k] = core.W(obj)
				}
			}
			txns[i] = core.T(core.TxnID(i+1), ops...)
		}
		ts := core.MustTxnSet(txns...)
		s := randomSchedule(rng, ts)
		d := core.ComputeDepends(s)
		want := naiveDepends(s)
		for q := 0; q < s.Len(); q++ {
			for p := 0; p < s.Len(); p++ {
				if d.DependsOnPos(q, p) != want[p][q] {
					t.Fatalf("trial %d: mismatch at (%v depends on %v): got %v want %v\nschedule: %s",
						trial, s.At(q), s.At(p), d.DependsOnPos(q, p), want[p][q], s)
				}
			}
		}
	}
}

// randomSchedule builds a uniformly random interleaving of the set.
func randomSchedule(rng *rand.Rand, ts *core.TxnSet) *core.Schedule {
	type cursor struct {
		t    *core.Transaction
		next int
	}
	var cursors []*cursor
	remaining := 0
	for _, tx := range ts.Txns() {
		cursors = append(cursors, &cursor{t: tx})
		remaining += tx.Len()
	}
	ops := make([]core.Op, 0, remaining)
	for remaining > 0 {
		k := rng.Intn(len(cursors))
		c := cursors[k]
		if c.next >= c.t.Len() {
			continue
		}
		ops = append(ops, c.t.Op(c.next))
		c.next++
		remaining--
	}
	return core.MustSchedule(ts, ops)
}

func TestDependsPredecessorsBitset(t *testing.T) {
	inst := paperfig.Figure2()
	s := inst.Schedules["S1"]
	d := core.ComputeDepends(s)
	// r1[z] is last (position 4) and depends on everything except w2[y]?
	// No: it depends on w2[y] too (transitively). It depends on all 4
	// earlier operations.
	preds := d.Predecessors(4)
	if preds.Count() != 4 {
		t.Errorf("r1[z] should depend on all 4 predecessors, got %v", preds.Elements())
	}
}
