package core

import "fmt"

// This file adds view serializability, the classical criterion §5 of
// the paper recalls when drawing its historical analogy: view
// serializability was the intuitive correctness notion whose
// intractability pushed the field to conflict serializability, just as
// the NP-complete relatively-consistent class pushes the paper to
// relatively serializable schedules. Recognition is NP-complete, so
// IsViewSerializable enumerates serial orders and is intended for the
// small instances of the analysis tools.

// readsFromKey identifies a read operation's source: the writing
// operation, or the initial database state.
type readsFromKey struct {
	reader  Op
	writer  Op
	initial bool
}

// viewFingerprint captures the view of a schedule: every read's source
// write and the final write of every object.
type viewFingerprint struct {
	readsFrom map[Op]readsFromKey
	finals    map[string]Op
}

func viewOf(s *Schedule) viewFingerprint {
	fp := viewFingerprint{
		readsFrom: make(map[Op]readsFromKey),
		finals:    make(map[string]Op),
	}
	lastWrite := make(map[string]Op)
	haveWrite := make(map[string]bool)
	for pos := 0; pos < s.Len(); pos++ {
		o := s.At(pos)
		if o.Kind == ReadOp {
			if haveWrite[o.Object] {
				fp.readsFrom[o] = readsFromKey{reader: o, writer: lastWrite[o.Object]}
			} else {
				fp.readsFrom[o] = readsFromKey{reader: o, initial: true}
			}
		} else {
			lastWrite[o.Object] = o
			haveWrite[o.Object] = true
		}
	}
	for obj, w := range lastWrite {
		fp.finals[obj] = w
	}
	return fp
}

// ViewEquivalent reports whether two schedules over the same
// transaction set have the same reads-from relation and the same final
// writes.
func ViewEquivalent(a, b *Schedule) bool {
	fa, fb := viewOf(a), viewOf(b)
	if len(fa.readsFrom) != len(fb.readsFrom) || len(fa.finals) != len(fb.finals) {
		return false
	}
	for op, src := range fa.readsFrom {
		if fb.readsFrom[op] != src {
			return false
		}
	}
	for obj, w := range fa.finals {
		if fb.finals[obj] != w {
			return false
		}
	}
	return true
}

// maxViewTxns bounds the factorial serial-order enumeration.
const maxViewTxns = 9

// IsViewSerializable reports whether the schedule is view equivalent
// to some serial schedule. Recognition is NP-complete in general; this
// implementation enumerates the n! serial orders and refuses sets with
// more than 9 transactions.
func IsViewSerializable(s *Schedule) (bool, error) {
	order, err := ViewSerializationOrder(s)
	return order != nil, err
}

// ViewSerializationOrder returns a serial order the schedule is view
// equivalent to, or nil if none exists.
func ViewSerializationOrder(s *Schedule) ([]TxnID, error) {
	ts := s.Set()
	n := ts.NumTxns()
	if n > maxViewTxns {
		return nil, fmt.Errorf("core: view serializability test limited to %d transactions, set has %d", maxViewTxns, n)
	}
	ids := make([]TxnID, n)
	for i, t := range ts.Txns() {
		ids[i] = t.ID
	}
	target := viewOf(s)
	var found []TxnID
	permute(ids, func(order []TxnID) bool {
		serial, err := SerialSchedule(ts, order...)
		if err != nil {
			panic(err) // unreachable: permutations of valid IDs
		}
		fp := viewOf(serial)
		if fingerprintsEqual(target, fp) {
			found = append([]TxnID(nil), order...)
			return false
		}
		return true
	})
	return found, nil
}

func fingerprintsEqual(a, b viewFingerprint) bool {
	if len(a.readsFrom) != len(b.readsFrom) || len(a.finals) != len(b.finals) {
		return false
	}
	for op, src := range a.readsFrom {
		if b.readsFrom[op] != src {
			return false
		}
	}
	for obj, w := range a.finals {
		if b.finals[obj] != w {
			return false
		}
	}
	return true
}

// permute calls fn on every permutation of ids (Heap's algorithm,
// in-place); fn returning false stops the enumeration.
func permute(ids []TxnID, fn func([]TxnID) bool) {
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return fn(ids)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				ids[i], ids[k-1] = ids[k-1], ids[i]
			} else {
				ids[0], ids[k-1] = ids[k-1], ids[0]
			}
		}
		return true
	}
	rec(len(ids))
}
