package core_test

import (
	"testing"

	"relser/internal/core"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   core.Op
		want string
	}{
		{core.Op{Txn: 1, Kind: core.ReadOp, Object: "x"}, "r1[x]"},
		{core.Op{Txn: 12, Kind: core.WriteOp, Object: "acct_7"}, "w12[acct_7]"},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if core.ReadOp.String() != "r" || core.WriteOp.String() != "w" {
		t.Error("OpKind rendering wrong")
	}
	if got := core.OpKind(9).String(); got != "OpKind(9)" {
		t.Errorf("invalid kind renders %q", got)
	}
}

func TestConflictsWith(t *testing.T) {
	r1x := core.Op{Txn: 1, Kind: core.ReadOp, Object: "x"}
	w2x := core.Op{Txn: 2, Kind: core.WriteOp, Object: "x"}
	r2x := core.Op{Txn: 2, Kind: core.ReadOp, Object: "x"}
	w2y := core.Op{Txn: 2, Kind: core.WriteOp, Object: "y"}
	w1x := core.Op{Txn: 1, Kind: core.WriteOp, Object: "x"}

	if !r1x.ConflictsWith(w2x) || !w2x.ConflictsWith(r1x) {
		t.Error("read-write on same object must conflict (symmetrically)")
	}
	if r1x.ConflictsWith(r2x) {
		t.Error("read-read must not conflict")
	}
	if r1x.ConflictsWith(w2y) {
		t.Error("different objects must not conflict")
	}
	if r1x.ConflictsWith(w1x) {
		t.Error("operations of the same transaction never conflict")
	}
	if !w1x.ConflictsWith(w2x) {
		t.Error("write-write on same object must conflict")
	}
}

func TestSameOp(t *testing.T) {
	a := core.Op{Txn: 1, Seq: 2, Kind: core.ReadOp, Object: "x"}
	b := core.Op{Txn: 1, Seq: 2, Kind: core.ReadOp, Object: "x"}
	c := core.Op{Txn: 1, Seq: 3, Kind: core.ReadOp, Object: "x"}
	if !a.SameOp(b) || a.SameOp(c) {
		t.Error("SameOp identity wrong")
	}
}

func TestTBuilderAssignsIdentity(t *testing.T) {
	tx := core.T(3, core.R("x"), core.W("y"))
	if tx.ID != 3 || tx.Len() != 2 {
		t.Fatalf("T built %v", tx)
	}
	if tx.Op(0) != (core.Op{Txn: 3, Seq: 0, Kind: core.ReadOp, Object: "x"}) {
		t.Errorf("op 0 = %+v", tx.Op(0))
	}
	if tx.Op(1) != (core.Op{Txn: 3, Seq: 1, Kind: core.WriteOp, Object: "y"}) {
		t.Errorf("op 1 = %+v", tx.Op(1))
	}
	if got := tx.String(); got != "r3[x] w3[y]" {
		t.Errorf("String = %q", got)
	}
}

func TestTBuilderRejectsBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("T(0, ...) should panic")
		}
	}()
	core.T(0, core.R("x"))
}

func TestReadWriteSets(t *testing.T) {
	tx := core.T(1, core.R("b"), core.W("a"), core.R("a"), core.W("c"), core.W("a"))
	rs := tx.ReadSet()
	if len(rs) != 2 || rs[0] != "a" || rs[1] != "b" {
		t.Errorf("ReadSet = %v", rs)
	}
	ws := tx.WriteSet()
	if len(ws) != 2 || ws[0] != "a" || ws[1] != "c" {
		t.Errorf("WriteSet = %v", ws)
	}
}
