package core

import (
	"relser/internal/graph"
)

// Depends is the materialized depends-on relation of a schedule (§2):
// o2 directly depends on o1 if o1 precedes o2 in S and either both
// belong to the same transaction or they conflict; depends-on is the
// transitive closure of directly-depends-on.
//
// The relation is stored as one backward reachability bitset per
// schedule position, computed by a forward dynamic program: when
// scanning position p, the positions that directly precede p under the
// relation already carry their full closure, so dep(p) is the union of
// their closures plus themselves. A covering subset of direct
// predecessors suffices for the closure:
//
//   - the previous operation of the same transaction (whose closure
//     covers all earlier same-transaction operations);
//   - for a read of x: the latest earlier write of x (whose closure
//     covers all earlier writes of x through w-w conflicts);
//   - for a write of x: the latest earlier write of x plus every read
//     of x after that write (reads of x do not depend on one another).
//
// This keeps construction at O(n · d / 64) words of bitset unions,
// where d is the number of covering predecessors.
type Depends struct {
	s      *Schedule
	direct bool
	// dep[p] = set of schedule positions q < p such that the operation
	// at p depends on the operation at q.
	dep []graph.Bitset
}

// ComputeDepends builds the full (transitive) depends-on relation.
func ComputeDepends(s *Schedule) *Depends {
	return computeDepends(s, false)
}

// ComputeDirectDepends builds only the directly-depends-on relation
// (no transitive closure). It exists for the Figure 2 ablation, which
// shows that using direct conflicts alone admits incorrect schedules.
func ComputeDirectDepends(s *Schedule) *Depends {
	return computeDepends(s, true)
}

func computeDepends(s *Schedule, direct bool) *Depends {
	n := s.Len()
	d := &Depends{s: s, direct: direct, dep: make([]graph.Bitset, n)}
	if direct {
		// Direct relation: o(p) directly depends on o(q) iff q < p and
		// (same transaction or conflict). Quadratic scan; the direct
		// variant is only used on small ablation instances.
		for p := 0; p < n; p++ {
			row := graph.NewBitset(n)
			op := s.At(p)
			for q := 0; q < p; q++ {
				oq := s.At(q)
				if oq.Txn == op.Txn || oq.ConflictsWith(op) {
					row.Set(q)
				}
			}
			d.dep[p] = row
		}
		return d
	}
	lastOfTxn := make(map[TxnID]int)     // txn -> last schedule position seen
	lastWrite := make(map[string]int)    // object -> position of latest write
	readsSince := make(map[string][]int) // object -> read positions after latest write
	for p := 0; p < n; p++ {
		row := graph.NewBitset(n)
		op := s.At(p)
		absorb := func(q int) {
			row.UnionWith(d.dep[q])
			row.Set(q)
		}
		if q, ok := lastOfTxn[op.Txn]; ok {
			absorb(q)
		}
		if w, ok := lastWrite[op.Object]; ok {
			absorb(w)
		}
		if op.Kind == WriteOp {
			for _, r := range readsSince[op.Object] {
				absorb(r)
			}
			lastWrite[op.Object] = p
			readsSince[op.Object] = readsSince[op.Object][:0]
		} else {
			readsSince[op.Object] = append(readsSince[op.Object], p)
		}
		lastOfTxn[op.Txn] = p
		d.dep[p] = row
	}
	return d
}

// Schedule returns the schedule the relation was computed from.
func (d *Depends) Schedule() *Schedule { return d.s }

// DependsOn reports whether later depends on earlier in the schedule.
// The relation is irreflexive; if earlier does not precede later in the
// schedule the answer is false.
func (d *Depends) DependsOn(later, earlier Op) bool {
	lp, ep := d.s.Pos(later), d.s.Pos(earlier)
	if ep >= lp {
		return false
	}
	return d.dep[lp].Has(ep)
}

// DependsOnPos is DependsOn addressed by schedule positions.
func (d *Depends) DependsOnPos(laterPos, earlierPos int) bool {
	if earlierPos >= laterPos {
		return false
	}
	return d.dep[laterPos].Has(earlierPos)
}

// Predecessors returns the schedule positions the operation at pos
// depends on. The caller must not mutate the returned bitset.
func (d *Depends) Predecessors(pos int) graph.Bitset { return d.dep[pos] }

// IsDirect reports whether the relation was built without transitive
// closure (the Figure 2 ablation variant).
func (d *Depends) IsDirect() bool { return d.direct }
