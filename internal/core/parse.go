package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseOps parses a whitespace-separated sequence of operations in the
// paper's notation, e.g. "r2[y] r1[x] w1[x]". Transaction subscripts
// may be multi-digit; object names may contain letters, digits,
// underscores and dots. Sequence numbers are left at zero — they are
// resolved against a TxnSet when the operations are assembled into a
// schedule.
func ParseOps(text string) ([]Op, error) {
	fields := strings.Fields(text)
	ops := make([]Op, 0, len(fields))
	for _, f := range fields {
		o, err := ParseOp(f)
		if err != nil {
			return nil, err
		}
		ops = append(ops, o)
	}
	return ops, nil
}

// ParseOp parses a single operation token such as "r12[acct_7]".
func ParseOp(tok string) (Op, error) {
	orig := tok
	if len(tok) < 4 {
		return Op{}, fmt.Errorf("core: malformed operation %q", orig)
	}
	var kind OpKind
	switch tok[0] {
	case 'r', 'R':
		kind = ReadOp
	case 'w', 'W':
		kind = WriteOp
	default:
		return Op{}, fmt.Errorf("core: operation %q must start with r or w", orig)
	}
	tok = tok[1:]
	bracket := strings.IndexByte(tok, '[')
	if bracket <= 0 || !strings.HasSuffix(tok, "]") {
		return Op{}, fmt.Errorf("core: operation %q must have the form r<txn>[<object>]", orig)
	}
	id, err := strconv.Atoi(tok[:bracket])
	if err != nil || id <= 0 {
		return Op{}, fmt.Errorf("core: operation %q has invalid transaction id %q", orig, tok[:bracket])
	}
	obj := tok[bracket+1 : len(tok)-1]
	if obj == "" {
		return Op{}, fmt.Errorf("core: operation %q has empty object", orig)
	}
	for _, r := range obj {
		if !isObjectRune(r) {
			return Op{}, fmt.Errorf("core: operation %q has invalid object character %q", orig, r)
		}
	}
	return Op{Txn: TxnID(id), Kind: kind, Object: obj}, nil
}

func isObjectRune(r rune) bool {
	return r == '_' || r == '.' || r == '-' ||
		(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

// ParseTxn parses a transaction body in anonymous notation, e.g.
// "r[x] w[x] w[z] r[y]", assigning the given ID.
func ParseTxn(id TxnID, text string) (*Transaction, error) {
	fields := strings.Fields(text)
	ops := make([]Op, 0, len(fields))
	for _, f := range fields {
		// Accept both "r[x]" and "r<id>[x]" tokens; in the latter case
		// the subscript must match.
		tok := f
		if len(tok) >= 2 && tok[1] == '[' {
			tok = tok[:1] + strconv.Itoa(int(id)) + tok[1:]
		}
		o, err := ParseOp(tok)
		if err != nil {
			return nil, err
		}
		if o.Txn != id {
			return nil, fmt.Errorf("core: transaction T%d body contains operation of T%d: %q", id, o.Txn, f)
		}
		o.Txn = 0 // T() reassigns identity
		ops = append(ops, o)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("core: transaction T%d has no operations", id)
	}
	return T(id, ops...), nil
}

// ParseSchedule parses a schedule in paper notation against a
// transaction set, validating completeness and program order.
func ParseSchedule(ts *TxnSet, text string) (*Schedule, error) {
	ops, err := ParseOps(text)
	if err != nil {
		return nil, err
	}
	return NewSchedule(ts, ops)
}

// Instance bundles a transaction set, a relative atomicity
// specification and a collection of named schedules — everything one of
// the paper's figures describes. Instances are parsed from a small
// text format (see ParseInstance) and used by the rscheck tool and the
// figure tests.
type Instance struct {
	Set       *TxnSet
	Spec      *Spec
	Schedules map[string]*Schedule
	// Names holds schedule names in declaration order.
	Names []string
}

// ParseInstance reads the instance text format:
//
//	# comment
//	txn 1: r[x] w[x] w[z] r[y]
//	txn 2: r[y] w[y] r[x]
//	atomicity 1 2: [r[x] w[x]] [w[z] r[y]]
//	allowall 2 1
//	schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] r1[y]
//
// Directives:
//
//   - "txn <id>: <ops>" declares a transaction (anonymous op notation).
//   - "atomicity <i> <j>: [unit] [unit] ..." sets Atomicity(Ti, Tj);
//     each bracketed group is one atomic unit and the concatenation
//     must equal Ti's program. Pairs not mentioned default to absolute
//     atomicity.
//   - "allowall <i> <j>" makes every operation of Ti its own unit
//     relative to Tj.
//   - "schedule <name>: <ops>" declares a named schedule in subscripted
//     notation.
//
// All txn directives must precede atomicity/allowall/schedule
// directives.
func ParseInstance(r io.Reader) (*Instance, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		txns   []*Transaction
		inst   *Instance
		lineNo int
	)
	ensureSet := func() error {
		if inst != nil {
			return nil
		}
		ts, err := NewTxnSet(txns...)
		if err != nil {
			return err
		}
		inst = &Instance{Set: ts, Spec: NewSpec(ts), Schedules: make(map[string]*Schedule)}
		return nil
	}
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		directive, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch directive {
		case "txn":
			if inst != nil {
				return nil, fmt.Errorf("core: line %d: txn directive after spec/schedule directives", lineNo)
			}
			idText, body, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("core: line %d: txn directive needs 'txn <id>: <ops>'", lineNo)
			}
			id, err := strconv.Atoi(strings.TrimSpace(idText))
			if err != nil || id <= 0 {
				return nil, fmt.Errorf("core: line %d: invalid transaction id %q", lineNo, idText)
			}
			t, err := ParseTxn(TxnID(id), body)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			txns = append(txns, t)
		case "atomicity":
			if err := ensureSet(); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			if err := parseAtomicityDirective(inst, rest, lineNo); err != nil {
				return nil, err
			}
		case "allowall":
			if err := ensureSet(); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return nil, fmt.Errorf("core: line %d: allowall needs 'allowall <i> <j>'", lineNo)
			}
			i, err1 := strconv.Atoi(fields[0])
			j, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("core: line %d: invalid allowall ids", lineNo)
			}
			if err := inst.Spec.AllowAll(TxnID(i), TxnID(j)); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
		case "schedule":
			if err := ensureSet(); err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			name, body, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("core: line %d: schedule directive needs 'schedule <name>: <ops>'", lineNo)
			}
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("core: line %d: schedule needs a name", lineNo)
			}
			if _, dup := inst.Schedules[name]; dup {
				return nil, fmt.Errorf("core: line %d: duplicate schedule %q", lineNo, name)
			}
			s, err := ParseSchedule(inst.Set, body)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			inst.Schedules[name] = s
			inst.Names = append(inst.Names, name)
		default:
			return nil, fmt.Errorf("core: line %d: unknown directive %q", lineNo, directive)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if err := ensureSet(); err != nil {
		return nil, err
	}
	return inst, nil
}

// parseAtomicityDirective handles "atomicity <i> <j>: [u1] [u2] ...".
func parseAtomicityDirective(inst *Instance, rest string, lineNo int) error {
	head, body, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("core: line %d: atomicity directive needs 'atomicity <i> <j>: [units]'", lineNo)
	}
	fields := strings.Fields(head)
	if len(fields) != 2 {
		return fmt.Errorf("core: line %d: atomicity directive needs two transaction ids", lineNo)
	}
	i, err1 := strconv.Atoi(fields[0])
	j, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("core: line %d: invalid atomicity ids", lineNo)
	}
	units, err := parseBracketGroups(body)
	if err != nil {
		return fmt.Errorf("core: line %d: %v", lineNo, err)
	}
	t := inst.Set.Txn(TxnID(i))
	if t == nil {
		return fmt.Errorf("core: line %d: unknown transaction T%d", lineNo, i)
	}
	lens := make([]int, 0, len(units))
	seq := 0
	for u, unit := range units {
		toks := strings.Fields(unit)
		if len(toks) == 0 {
			return fmt.Errorf("core: line %d: empty atomic unit %d", lineNo, u+1)
		}
		for _, tok := range toks {
			if seq >= t.Len() {
				return fmt.Errorf("core: line %d: atomicity units exceed T%d's %d operations", lineNo, i, t.Len())
			}
			want := t.Op(seq)
			// Tokens may be anonymous ("r[x]") or subscripted ("r1[x]").
			norm := tok
			if len(norm) >= 2 && norm[1] == '[' {
				norm = norm[:1] + strconv.Itoa(i) + norm[1:]
			}
			got, err := ParseOp(norm)
			if err != nil {
				return fmt.Errorf("core: line %d: %v", lineNo, err)
			}
			if got.Txn != TxnID(i) || got.Kind != want.Kind || got.Object != want.Object {
				return fmt.Errorf("core: line %d: unit operation %q does not match T%d's program (expected %v)", lineNo, tok, i, want)
			}
			seq++
		}
		lens = append(lens, len(toks))
	}
	if seq != t.Len() {
		return fmt.Errorf("core: line %d: atomicity units cover %d of T%d's %d operations", lineNo, seq, i, t.Len())
	}
	return inst.Spec.SetUnits(TxnID(i), TxnID(j), lens...)
}

// parseBracketGroups splits "[r[x] w[x]] [w[z]]" into
// {"r[x] w[x]", "w[z]"}. Group brackets may enclose operation tokens
// that themselves contain bracketed object names, so the split tracks
// nesting depth rather than scanning for the first ']'.
func parseBracketGroups(s string) ([]string, error) {
	var groups []string
	rest := strings.TrimSpace(s)
	for rest != "" {
		if rest[0] != '[' {
			return nil, fmt.Errorf("core: expected '[' at %q", rest)
		}
		depth := 0
		end := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '[':
				depth++
			case ']':
				depth--
				if depth == 0 {
					end = i
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("core: unterminated atomic unit in %q", s)
		}
		groups = append(groups, strings.TrimSpace(rest[1:end]))
		rest = strings.TrimSpace(rest[end+1:])
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no atomic units in %q", s)
	}
	return groups, nil
}

// FormatInstance renders an instance back into the text format that
// ParseInstance accepts (round-trippable modulo comments and unit
// brackets for absolute pairs).
func FormatInstance(inst *Instance) string {
	var sb strings.Builder
	for _, t := range inst.Set.Txns() {
		fmt.Fprintf(&sb, "txn %d:", int(t.ID))
		for _, o := range t.Ops {
			fmt.Fprintf(&sb, " %s[%s]", o.Kind, o.Object)
		}
		sb.WriteByte('\n')
	}
	for _, ti := range inst.Set.Txns() {
		for _, tj := range inst.Set.Txns() {
			if ti.ID == tj.ID || inst.Spec.NumUnits(ti.ID, tj.ID) == 1 {
				continue
			}
			fmt.Fprintf(&sb, "atomicity %d %d: %s\n", int(ti.ID), int(tj.ID), inst.Spec.Atomicity(ti.ID, tj.ID))
		}
	}
	names := inst.Names
	if names == nil {
		for name := range inst.Schedules {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		fmt.Fprintf(&sb, "schedule %s: %s\n", name, inst.Schedules[name])
	}
	return sb.String()
}
