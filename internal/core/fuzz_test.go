package core_test

// Fuzz targets for the parsers: no input may crash them, and every
// accepted input must round-trip through the formatter. `go test`
// exercises the seed corpus; `go test -fuzz=FuzzParseInstance` explores
// further.

import (
	"strings"
	"testing"

	"relser/internal/core"
)

func FuzzParseOp(f *testing.F) {
	for _, seed := range []string{
		"r1[x]", "w12[acct_7]", "R3[Z]", "", "r", "r1[", "r1[]", "w0[x]",
		"r1[x]garbage", "r999999999999999999999[x]", "r1[\x00]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		op, err := core.ParseOp(raw)
		if err != nil {
			return
		}
		back, err := core.ParseOp(op.String())
		if err != nil {
			t.Fatalf("accepted %q as %v but String() does not reparse: %v", raw, op, err)
		}
		if back != op {
			t.Fatalf("round trip changed %v to %v", op, back)
		}
	})
}

func FuzzParseSchedule(f *testing.F) {
	f.Add("r1[x] w1[x] r2[y]")
	f.Add("r1[x] r1[x]")
	f.Add("w2[y] r1[x] w1[x]")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		ts := core.MustTxnSet(
			core.T(1, core.R("x"), core.W("x")),
			core.T(2, core.R("y")),
		)
		s, err := core.ParseSchedule(ts, raw)
		if err != nil {
			return
		}
		// Accepted schedules are complete and ordered.
		if s.Len() != ts.NumOps() {
			t.Fatalf("accepted incomplete schedule %q", raw)
		}
		if _, err := core.ParseSchedule(ts, s.String()); err != nil {
			t.Fatalf("schedule %q does not round trip: %v", s, err)
		}
	})
}

func FuzzParseInstance(f *testing.F) {
	f.Add("txn 1: r[x] w[x]\ntxn 2: w[x]\natomicity 1 2: [r[x]] [w[x]]\nschedule S: r1[x] w2[x] w1[x]\n")
	f.Add("txn 1: r[x]\nallowall 1 1\n")
	f.Add("# comment only\n")
	f.Add("txn 1: r[x]\nschedule S: r1[x]\nschedule S: r1[x]\n")
	f.Add("atomicity 1 2: [r[x]]\n")
	f.Add("txn 1: r[x]\natomicity 1 2: [r[x]\n")
	f.Fuzz(func(t *testing.T, raw string) {
		inst, err := core.ParseInstance(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted instances format and reparse to the same content.
		text := core.FormatInstance(inst)
		back, err := core.ParseInstance(strings.NewReader(text))
		if err != nil {
			t.Fatalf("formatted instance does not reparse: %v\n%s", err, text)
		}
		if back.Set.String() != inst.Set.String() || back.Spec.String() != inst.Spec.String() {
			t.Fatalf("round trip changed instance:\n%s\nvs\n%s", core.FormatInstance(back), text)
		}
		// Classification never panics on accepted instances.
		for _, name := range inst.Names {
			s := inst.Schedules[name]
			core.IsRelativelySerializable(s, inst.Spec)
			core.IsRelativelyAtomic(s, inst.Spec)
		}
	})
}
