package core

import (
	"fmt"
	"sort"
	"strings"
)

// Transaction is a totally ordered sequence of read/write operations
// issued under one transaction identifier (§2 of the paper; we follow
// its simplifying assumption that transactions are total orders).
type Transaction struct {
	ID  TxnID
	Ops []Op
}

// T builds a transaction from operations created with R and W,
// assigning the transaction ID and sequence numbers:
//
//	t1 := core.T(1, core.R("x"), core.W("x"), core.W("z"), core.R("y"))
func T(id TxnID, ops ...Op) *Transaction {
	if id <= 0 {
		panic(fmt.Sprintf("core: transaction ID must be positive, got %d", id))
	}
	t := &Transaction{ID: id, Ops: make([]Op, len(ops))}
	for i, o := range ops {
		o.Txn = id
		o.Seq = i
		t.Ops[i] = o
	}
	return t
}

// Len returns the number of operations.
func (t *Transaction) Len() int { return len(t.Ops) }

// Op returns the operation at 0-based sequence position seq.
func (t *Transaction) Op(seq int) Op { return t.Ops[seq] }

// String renders the transaction in paper notation, e.g.
// "r1[x] w1[x] w1[z] r1[y]".
func (t *Transaction) String() string {
	parts := make([]string, len(t.Ops))
	for i, o := range t.Ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// ReadSet returns the distinct objects read, sorted.
func (t *Transaction) ReadSet() []string { return t.objectSet(ReadOp) }

// WriteSet returns the distinct objects written, sorted.
func (t *Transaction) WriteSet() []string { return t.objectSet(WriteOp) }

func (t *Transaction) objectSet(kind OpKind) []string {
	seen := make(map[string]bool)
	for _, o := range t.Ops {
		if o.Kind == kind {
			seen[o.Object] = true
		}
	}
	out := make([]string, 0, len(seen))
	for obj := range seen {
		out = append(out, obj)
	}
	sort.Strings(out)
	return out
}

// TxnSet is an immutable collection of transactions with dense global
// operation indexing. Every graph structure in this module addresses
// operations through the global index a TxnSet assigns:
// global(Ti, seq) = offset(Ti) + seq.
type TxnSet struct {
	txns    []*Transaction // sorted by ID
	byID    map[TxnID]*Transaction
	offsets map[TxnID]int
	ops     []Op // global index -> operation
}

// NewTxnSet validates and indexes a collection of transactions.
// Transaction IDs must be positive and distinct; every transaction must
// contain at least one operation.
func NewTxnSet(txns ...*Transaction) (*TxnSet, error) {
	ts := &TxnSet{
		byID:    make(map[TxnID]*Transaction, len(txns)),
		offsets: make(map[TxnID]int, len(txns)),
	}
	ts.txns = make([]*Transaction, len(txns))
	copy(ts.txns, txns)
	sort.Slice(ts.txns, func(i, j int) bool { return ts.txns[i].ID < ts.txns[j].ID })
	for _, t := range ts.txns {
		if t == nil {
			return nil, fmt.Errorf("core: nil transaction in set")
		}
		if t.ID <= 0 {
			return nil, fmt.Errorf("core: transaction ID %d is not positive", t.ID)
		}
		if _, dup := ts.byID[t.ID]; dup {
			return nil, fmt.Errorf("core: duplicate transaction ID %d", t.ID)
		}
		if len(t.Ops) == 0 {
			return nil, fmt.Errorf("core: transaction T%d has no operations", t.ID)
		}
		for i, o := range t.Ops {
			if o.Txn != t.ID || o.Seq != i {
				return nil, fmt.Errorf("core: operation %v of T%d has inconsistent identity (seq %d)", o, t.ID, i)
			}
			if o.Object == "" {
				return nil, fmt.Errorf("core: operation %d of T%d has empty object", i, t.ID)
			}
		}
		ts.byID[t.ID] = t
		ts.offsets[t.ID] = len(ts.ops)
		ts.ops = append(ts.ops, t.Ops...)
	}
	if len(ts.txns) == 0 {
		return nil, fmt.Errorf("core: empty transaction set")
	}
	return ts, nil
}

// MustTxnSet is NewTxnSet that panics on error; intended for tests and
// package-level fixtures.
func MustTxnSet(txns ...*Transaction) *TxnSet {
	ts, err := NewTxnSet(txns...)
	if err != nil {
		panic(err)
	}
	return ts
}

// Txns returns the transactions sorted by ID. Callers must not mutate
// the returned slice.
func (ts *TxnSet) Txns() []*Transaction { return ts.txns }

// Txn returns the transaction with the given ID, or nil if absent.
func (ts *TxnSet) Txn(id TxnID) *Transaction { return ts.byID[id] }

// Has reports whether the set contains a transaction with the given ID.
func (ts *TxnSet) Has(id TxnID) bool { _, ok := ts.byID[id]; return ok }

// NumTxns returns the number of transactions.
func (ts *TxnSet) NumTxns() int { return len(ts.txns) }

// NumOps returns the total operation count across all transactions.
func (ts *TxnSet) NumOps() int { return len(ts.ops) }

// GlobalIndex maps (transaction, sequence) to the dense global index.
func (ts *TxnSet) GlobalIndex(id TxnID, seq int) int {
	off, ok := ts.offsets[id]
	if !ok {
		panic(fmt.Sprintf("core: unknown transaction T%d", id))
	}
	if seq < 0 || seq >= ts.byID[id].Len() {
		panic(fmt.Sprintf("core: T%d has no operation %d", id, seq))
	}
	return off + seq
}

// GlobalIndexOf maps an operation to its dense global index.
func (ts *TxnSet) GlobalIndexOf(o Op) int { return ts.GlobalIndex(o.Txn, o.Seq) }

// OpAt returns the operation with the given global index.
func (ts *TxnSet) OpAt(global int) Op { return ts.ops[global] }

// Objects returns all distinct objects referenced by any transaction,
// sorted.
func (ts *TxnSet) Objects() []string {
	seen := make(map[string]bool)
	for _, o := range ts.ops {
		seen[o.Object] = true
	}
	out := make([]string, 0, len(seen))
	for obj := range seen {
		out = append(out, obj)
	}
	sort.Strings(out)
	return out
}

// String lists the transactions, one per line.
func (ts *TxnSet) String() string {
	var sb strings.Builder
	for i, t := range ts.txns {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "T%d = %s", int(t.ID), t)
	}
	return sb.String()
}
