package core

import (
	"fmt"
	"strings"
)

// Schedule is a total order over all operations of a TxnSet that
// preserves each transaction's program order (§2). Schedules are
// immutable once constructed.
type Schedule struct {
	set   *TxnSet
	seq   []int // position -> global op index
	posOf []int // global op index -> position
}

// NewSchedule validates that ops is a complete interleaving of the
// transaction set: every operation appears exactly once and program
// order is preserved.
func NewSchedule(ts *TxnSet, ops []Op) (*Schedule, error) {
	n := ts.NumOps()
	if len(ops) != n {
		return nil, fmt.Errorf("core: schedule has %d operations, transaction set has %d", len(ops), n)
	}
	s := &Schedule{set: ts, seq: make([]int, n), posOf: make([]int, n)}
	for i := range s.posOf {
		s.posOf[i] = -1
	}
	nextSeq := make(map[TxnID]int, ts.NumTxns())
	for pos, o := range ops {
		if !ts.Has(o.Txn) {
			return nil, fmt.Errorf("core: schedule position %d: unknown transaction T%d", pos, o.Txn)
		}
		want := ts.Txn(o.Txn).Op(nextSeq[o.Txn])
		// Operations may be identified fully (Txn, Seq) or by shape only
		// (Seq zero, as produced by the schedule parser); either way the
		// next program-order operation of the transaction must match.
		if o.Seq != nextSeq[o.Txn] && o.Seq != 0 {
			return nil, fmt.Errorf("core: schedule position %d: %v out of program order (expected seq %d of T%d)", pos, o, nextSeq[o.Txn], o.Txn)
		}
		if o.Kind != want.Kind || o.Object != want.Object {
			return nil, fmt.Errorf("core: schedule position %d: got %s%d[%s], program order expects %v", pos, o.Kind, int(o.Txn), o.Object, want)
		}
		g := ts.GlobalIndex(o.Txn, nextSeq[o.Txn])
		nextSeq[o.Txn]++
		s.seq[pos] = g
		s.posOf[g] = pos
	}
	for _, t := range ts.Txns() {
		if nextSeq[t.ID] != t.Len() {
			return nil, fmt.Errorf("core: schedule is missing operations of T%d", t.ID)
		}
	}
	return s, nil
}

// MustSchedule is NewSchedule that panics on error; intended for tests
// and fixtures.
func MustSchedule(ts *TxnSet, ops []Op) *Schedule {
	s, err := NewSchedule(ts, ops)
	if err != nil {
		panic(err)
	}
	return s
}

// SerialSchedule builds the serial schedule executing whole
// transactions in the given ID order. Omitting order executes
// transactions in ascending ID order.
func SerialSchedule(ts *TxnSet, order ...TxnID) (*Schedule, error) {
	if len(order) == 0 {
		for _, t := range ts.Txns() {
			order = append(order, t.ID)
		}
	}
	if len(order) != ts.NumTxns() {
		return nil, fmt.Errorf("core: serial order names %d transactions, set has %d", len(order), ts.NumTxns())
	}
	seen := make(map[TxnID]bool, len(order))
	ops := make([]Op, 0, ts.NumOps())
	for _, id := range order {
		t := ts.Txn(id)
		if t == nil {
			return nil, fmt.Errorf("core: serial order names unknown transaction T%d", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("core: serial order repeats T%d", id)
		}
		seen[id] = true
		ops = append(ops, t.Ops...)
	}
	return NewSchedule(ts, ops)
}

// Set returns the underlying transaction set.
func (s *Schedule) Set() *TxnSet { return s.set }

// Len returns the number of operations in the schedule.
func (s *Schedule) Len() int { return len(s.seq) }

// At returns the operation at schedule position pos (0-based).
func (s *Schedule) At(pos int) Op { return s.set.OpAt(s.seq[pos]) }

// GlobalAt returns the global operation index at schedule position pos.
func (s *Schedule) GlobalAt(pos int) int { return s.seq[pos] }

// Pos returns the schedule position of an operation.
func (s *Schedule) Pos(o Op) int { return s.posOf[s.set.GlobalIndexOf(o)] }

// PosOfGlobal returns the schedule position of the operation with the
// given global index.
func (s *Schedule) PosOfGlobal(g int) int { return s.posOf[g] }

// Precedes reports whether a occurs before b in the schedule.
func (s *Schedule) Precedes(a, b Op) bool { return s.Pos(a) < s.Pos(b) }

// Ops returns the operations in schedule order.
func (s *Schedule) Ops() []Op {
	out := make([]Op, len(s.seq))
	for i, g := range s.seq {
		out[i] = s.set.OpAt(g)
	}
	return out
}

// String renders the schedule in paper notation:
// "r2[y] r1[x] w1[x] ...".
func (s *Schedule) String() string {
	parts := make([]string, len(s.seq))
	for i, g := range s.seq {
		parts[i] = s.set.OpAt(g).String()
	}
	return strings.Join(parts, " ")
}

// IsSerial reports whether the schedule executes transactions one
// after another with no interleaving.
func (s *Schedule) IsSerial() bool {
	seen := make(map[TxnID]bool)
	var current TxnID
	for pos := range s.seq {
		o := s.At(pos)
		if o.Txn == current {
			continue
		}
		if seen[o.Txn] {
			return false
		}
		seen[o.Txn] = true
		current = o.Txn
	}
	return true
}

// ConflictPair is an ordered pair of conflicting operations: First
// precedes Second in the schedule that produced the pair.
type ConflictPair struct {
	First, Second Op
}

// ConflictPairs returns every ordered conflicting pair of the schedule,
// in lexicographic (first position, second position) order.
func (s *Schedule) ConflictPairs() []ConflictPair {
	var out []ConflictPair
	n := s.Len()
	for i := 0; i < n; i++ {
		oi := s.At(i)
		for j := i + 1; j < n; j++ {
			oj := s.At(j)
			if oi.ConflictsWith(oj) {
				out = append(out, ConflictPair{First: oi, Second: oj})
			}
		}
	}
	return out
}

// ConflictEquivalent reports whether two schedules over the same
// transaction set order every conflicting pair identically (§2).
func ConflictEquivalent(a, b *Schedule) bool {
	if a.set != b.set {
		// Different TxnSet pointers may still describe identical sets;
		// we require structural equality of the op universe.
		if a.set.NumOps() != b.set.NumOps() {
			return false
		}
		for g := 0; g < a.set.NumOps(); g++ {
			if a.set.OpAt(g) != b.set.OpAt(g) {
				return false
			}
		}
	}
	n := a.Len()
	if b.Len() != n {
		return false
	}
	for i := 0; i < n; i++ {
		oi := a.At(i)
		for j := i + 1; j < n; j++ {
			oj := a.At(j)
			if oi.ConflictsWith(oj) && !b.Precedes(oi, oj) {
				return false
			}
		}
	}
	return true
}
