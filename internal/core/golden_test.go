package core_test

import (
	"os"
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

// TestGoldenFigure3DOT locks the DOT rendering of Figure 3's RSG to a
// golden file: the graph is the paper's central illustration and its
// rendering must stay stable (labels, styles, deterministic order).
// Regenerate with: go run ./cmd/rscheck -fig 3 -dot S2 > internal/core/testdata/fig3_rsg.dot
func TestGoldenFigure3DOT(t *testing.T) {
	inst := paperfig.Figure3()
	got := core.BuildRSG(inst.Schedules["S2"], inst.Spec).Dot("S2")
	want, err := os.ReadFile("testdata/fig3_rsg.dot")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("DOT rendering drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
