package core

import (
	"fmt"
	"sort"
	"strings"
)

// Spec holds the relative atomicity specifications for a transaction
// set: for every ordered pair (Ti, Tj) with i ≠ j, Atomicity(Ti, Tj)
// partitions Ti's operations into an ordered sequence of atomic units.
// Operations of Tj may not execute inside an atomic unit of Ti relative
// to Tj (Definition 1), except under the paper's depends-on relaxation
// (Definition 2).
//
// Internally a pair's partition is stored as a sorted slice of cut
// positions: a cut at p (0 < p < len(Ti)) separates operation p-1 from
// operation p. No cuts means Ti is a single atomic unit relative to Tj
// (absolute atomicity), which is the default for every pair.
type Spec struct {
	set  *TxnSet
	cuts map[TxnID]map[TxnID][]int
}

// NewSpec returns the absolute-atomicity specification for the set:
// every transaction is a single atomic unit relative to every other.
func NewSpec(ts *TxnSet) *Spec {
	return &Spec{set: ts, cuts: make(map[TxnID]map[TxnID][]int)}
}

// Set returns the transaction set the specification covers.
func (sp *Spec) Set() *TxnSet { return sp.set }

// Clone returns an independent copy of the specification.
func (sp *Spec) Clone() *Spec {
	c := NewSpec(sp.set)
	for i, m := range sp.cuts {
		cm := make(map[TxnID][]int, len(m))
		for j, cs := range m {
			cm[j] = append([]int(nil), cs...)
		}
		c.cuts[i] = cm
	}
	return c
}

// SetUnits declares Atomicity(Ti, Tj) as consecutive units of the given
// lengths, which must be positive and sum to len(Ti). For the paper's
// Figure 1, Atomicity(T1, T2) = <r1[x] w1[x] | w1[z] r1[y]> is
// spec.SetUnits(1, 2, 2, 2).
func (sp *Spec) SetUnits(i, j TxnID, unitLens ...int) error {
	t, err := sp.pair(i, j)
	if err != nil {
		return err
	}
	total := 0
	cuts := make([]int, 0, len(unitLens))
	for k, l := range unitLens {
		if l <= 0 {
			return fmt.Errorf("core: Atomicity(T%d, T%d): unit %d has non-positive length %d", i, j, k+1, l)
		}
		total += l
		if total < t.Len() {
			cuts = append(cuts, total)
		}
	}
	if total != t.Len() {
		return fmt.Errorf("core: Atomicity(T%d, T%d): unit lengths sum to %d, T%d has %d operations", i, j, total, i, t.Len())
	}
	sp.storeCuts(i, j, cuts)
	return nil
}

// CutAfter adds a unit boundary in Atomicity(Ti, Tj) immediately after
// operation seq (0-based); the paper calls these breakpoints [FÖ89].
// Cutting after the final operation is a no-op.
func (sp *Spec) CutAfter(i, j TxnID, seq int) error {
	t, err := sp.pair(i, j)
	if err != nil {
		return err
	}
	if seq < 0 || seq >= t.Len() {
		return fmt.Errorf("core: Atomicity(T%d, T%d): cut after seq %d out of range [0, %d)", i, j, seq, t.Len())
	}
	p := seq + 1
	if p >= t.Len() {
		return nil
	}
	cuts := sp.cutsFor(i, j)
	k := sort.SearchInts(cuts, p)
	if k < len(cuts) && cuts[k] == p {
		return nil
	}
	cuts = append(cuts, 0)
	copy(cuts[k+1:], cuts[k:])
	cuts[k] = p
	sp.storeCuts(i, j, cuts)
	return nil
}

// AllowAll makes every operation of Ti its own atomic unit relative to
// Tj: Tj may interleave anywhere inside Ti.
func (sp *Spec) AllowAll(i, j TxnID) error {
	t, err := sp.pair(i, j)
	if err != nil {
		return err
	}
	cuts := make([]int, 0, t.Len()-1)
	for p := 1; p < t.Len(); p++ {
		cuts = append(cuts, p)
	}
	sp.storeCuts(i, j, cuts)
	return nil
}

// AllowAllPairs applies AllowAll to every ordered pair: the
// specification imposes no atomicity at all.
func (sp *Spec) AllowAllPairs() {
	for _, ti := range sp.set.Txns() {
		for _, tj := range sp.set.Txns() {
			if ti.ID != tj.ID {
				if err := sp.AllowAll(ti.ID, tj.ID); err != nil {
					panic(err) // unreachable: IDs come from the set
				}
			}
		}
	}
}

// IsAbsolute reports whether the specification is the traditional
// absolute-atomicity model: every transaction is one atomic unit
// relative to every other transaction.
func (sp *Spec) IsAbsolute() bool {
	for _, m := range sp.cuts {
		for _, cs := range m {
			if len(cs) > 0 {
				return false
			}
		}
	}
	return true
}

// NumUnits returns the number of atomic units in Atomicity(Ti, Tj).
func (sp *Spec) NumUnits(i, j TxnID) int { return len(sp.cutsFor(i, j)) + 1 }

// Unit returns the half-open sequence bounds [start, end] (inclusive)
// of the k-th (0-based) atomic unit of Atomicity(Ti, Tj).
func (sp *Spec) Unit(i, j TxnID, k int) (start, end int) {
	cuts := sp.cutsFor(i, j)
	if k < 0 || k > len(cuts) {
		panic(fmt.Sprintf("core: Atomicity(T%d, T%d) has no unit %d", i, j, k))
	}
	start = 0
	if k > 0 {
		start = cuts[k-1]
	}
	end = sp.set.Txn(i).Len() - 1
	if k < len(cuts) {
		end = cuts[k] - 1
	}
	return start, end
}

// UnitOf returns the inclusive sequence bounds of the atomic unit of
// Atomicity(Ti, Tj) containing Ti's operation seq.
func (sp *Spec) UnitOf(i TxnID, seq int, j TxnID) (start, end int) {
	cuts := sp.cutsFor(i, j)
	// Number of cuts at or before seq = index of the unit containing seq.
	k := sort.SearchInts(cuts, seq+1)
	return sp.Unit(i, j, k)
}

// UnitIndexOf returns the 0-based index of the atomic unit of
// Atomicity(Ti, Tj) containing Ti's operation seq.
func (sp *Spec) UnitIndexOf(i TxnID, seq int, j TxnID) int {
	return sort.SearchInts(sp.cutsFor(i, j), seq+1)
}

// PushForward returns the last operation of the atomic unit of o's
// transaction, relative to Tk, that contains o (§3). In Figure 1,
// PushForward(r1[x], T2) is w1[x].
func (sp *Spec) PushForward(o Op, k TxnID) Op {
	_, end := sp.UnitOf(o.Txn, o.Seq, k)
	return sp.set.Txn(o.Txn).Op(end)
}

// PullBackward returns the first operation of the atomic unit of o's
// transaction, relative to Tk, that contains o (§3). In Figure 1,
// PullBackward(r1[y], T2) is w1[z].
func (sp *Spec) PullBackward(o Op, k TxnID) Op {
	start, _ := sp.UnitOf(o.Txn, o.Seq, k)
	return sp.set.Txn(o.Txn).Op(start)
}

// Atomicity renders Atomicity(Ti, Tj) in a bracketed form mirroring the
// paper's boxed figures, e.g. "[r1[x] w1[x]] [w1[z] r1[y]]".
func (sp *Spec) Atomicity(i, j TxnID) string {
	t := sp.set.Txn(i)
	if t == nil {
		return fmt.Sprintf("Atomicity(T%d, T%d): unknown transaction", i, j)
	}
	var sb strings.Builder
	for k := 0; k < sp.NumUnits(i, j); k++ {
		if k > 0 {
			sb.WriteByte(' ')
		}
		start, end := sp.Unit(i, j, k)
		sb.WriteByte('[')
		for s := start; s <= end; s++ {
			if s > start {
				sb.WriteByte(' ')
			}
			sb.WriteString(t.Op(s).String())
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// String renders the whole specification, one pair per line, in
// (Ti, Tj) ID order, omitting pairs that are single (absolute) units.
func (sp *Spec) String() string {
	var sb strings.Builder
	first := true
	for _, ti := range sp.set.Txns() {
		for _, tj := range sp.set.Txns() {
			if ti.ID == tj.ID {
				continue
			}
			if sp.NumUnits(ti.ID, tj.ID) == 1 {
				continue
			}
			if !first {
				sb.WriteByte('\n')
			}
			first = false
			fmt.Fprintf(&sb, "Atomicity(T%d, T%d): %s", int(ti.ID), int(tj.ID), sp.Atomicity(ti.ID, tj.ID))
		}
	}
	if first {
		return "(absolute atomicity)"
	}
	return sb.String()
}

func (sp *Spec) pair(i, j TxnID) (*Transaction, error) {
	if i == j {
		return nil, fmt.Errorf("core: Atomicity(T%d, T%d) is not defined for a transaction relative to itself", i, j)
	}
	t := sp.set.Txn(i)
	if t == nil {
		return nil, fmt.Errorf("core: unknown transaction T%d", i)
	}
	if !sp.set.Has(j) {
		return nil, fmt.Errorf("core: unknown transaction T%d", j)
	}
	return t, nil
}

func (sp *Spec) cutsFor(i, j TxnID) []int { return sp.cuts[i][j] }

func (sp *Spec) storeCuts(i, j TxnID, cuts []int) {
	m := sp.cuts[i]
	if m == nil {
		m = make(map[TxnID][]int)
		sp.cuts[i] = m
	}
	m[j] = cuts
}

// Refine returns the specification whose cut sets are the unions of
// the two inputs': every unit boundary declared by either is declared
// by the result. Refine is the join of the specification lattice;
// admission is monotone along it (a finer specification admits at
// least the schedules a coarser one does).
func (sp *Spec) Refine(other *Spec) *Spec {
	out := sp.Clone()
	for i, m := range other.cuts {
		for j, cs := range m {
			for _, p := range cs {
				if err := out.CutAfter(i, j, p-1); err != nil {
					panic(fmt.Sprintf("core: Refine over mismatched sets: %v", err))
				}
			}
		}
	}
	return out
}

// Coarsen returns the specification whose cut sets are the
// intersections of the two inputs': a unit boundary survives only if
// both declare it. Coarsen is the meet of the specification lattice.
func (sp *Spec) Coarsen(other *Spec) *Spec {
	out := NewSpec(sp.set)
	for i, m := range sp.cuts {
		for j, cs := range m {
			otherCuts := make(map[int]bool)
			for _, p := range other.cutsFor(i, j) {
				otherCuts[p] = true
			}
			for _, p := range cs {
				if otherCuts[p] {
					if err := out.CutAfter(i, j, p-1); err != nil {
						panic(fmt.Sprintf("core: Coarsen over mismatched sets: %v", err))
					}
				}
			}
		}
	}
	return out
}

// RefinesOrEquals reports whether sp declares every unit boundary
// other declares (sp is at least as fine as other).
func (sp *Spec) RefinesOrEquals(other *Spec) bool {
	for i, m := range other.cuts {
		for j, cs := range m {
			mine := make(map[int]bool)
			for _, p := range sp.cutsFor(i, j) {
				mine[p] = true
			}
			for _, p := range cs {
				if !mine[p] {
					return false
				}
			}
		}
	}
	return true
}
