package paperfig_test

import (
	"testing"

	"relser/internal/core"
	"relser/internal/paperfig"
)

func TestAllFixturesWellFormed(t *testing.T) {
	named := paperfig.All()
	if len(named) != 4 {
		t.Fatalf("expected 4 figures, got %d", len(named))
	}
	wantNames := []string{"fig1", "fig2", "fig3", "fig4"}
	for i, n := range named {
		if n.Name != wantNames[i] {
			t.Errorf("figure %d named %q", i, n.Name)
		}
		if n.Title == "" {
			t.Errorf("%s: empty title", n.Name)
		}
		inst := n.Instance
		if inst.Set == nil || inst.Spec == nil || len(inst.Schedules) == 0 {
			t.Fatalf("%s: incomplete instance", n.Name)
		}
		if len(inst.Names) != len(inst.Schedules) {
			t.Errorf("%s: Names/Schedules mismatch", n.Name)
		}
		for _, name := range inst.Names {
			s := inst.Schedules[name]
			if s == nil {
				t.Fatalf("%s: schedule %q missing", n.Name, name)
			}
			// Every fixture schedule is a valid complete interleaving
			// (round-trip through the parser as a sanity check).
			if _, err := core.ParseSchedule(inst.Set, s.String()); err != nil {
				t.Errorf("%s/%s: %v", n.Name, name, err)
			}
		}
	}
}

func TestFixtureIndependence(t *testing.T) {
	// Each call returns an independent instance: mutating one spec must
	// not leak into the next.
	a := paperfig.Figure1()
	if err := a.Spec.AllowAll(1, 2); err != nil {
		t.Fatal(err)
	}
	b := paperfig.Figure1()
	if b.Spec.NumUnits(1, 2) != 2 {
		t.Error("Figure1 instances share specification state")
	}
}

func TestFigureSchedulesMatchPaperText(t *testing.T) {
	fig1 := paperfig.Figure1()
	want := map[string]string{
		"Sra": "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]",
		"Srs": "r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]",
		"S2":  "r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]",
	}
	for name, text := range want {
		if got := fig1.Schedules[name].String(); got != text {
			t.Errorf("%s = %q, want the paper's %q", name, got, text)
		}
	}
	fig4 := paperfig.Figure4()
	if got := fig4.Schedules["S"].String(); got != "w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z]" {
		t.Errorf("Figure 4 S = %q", got)
	}
}
