// Package paperfig reconstructs, as executable fixtures, every worked
// example of Agrawal, Bruno, El Abbadi and Krishnaswamy, "Relative
// Serializability: An Approach for Relaxing the Atomicity of
// Transactions" (PODS 1994): the transaction sets, relative atomicity
// specifications and named schedules of Figures 1-4 and the in-text
// example schedules of §2 and §3.
//
// The experiment harness (EXPERIMENTS.md E1-E4) and the figure tests
// are built on these fixtures, so the package documents precisely which
// claim of the paper each schedule witnesses.
package paperfig

import (
	"fmt"

	"relser/internal/core"
)

func mustSpec(err error) {
	if err != nil {
		panic(fmt.Sprintf("paperfig: invalid fixture specification: %v", err))
	}
}

// Figure1 returns the running example of §2: three transactions with
// the relative atomicity specifications of Figure 1, and the named
// schedules
//
//	Sra — §2's relatively atomic (hence correct) but non-serial schedule;
//	Srs — §2's relatively serial schedule that is not relatively atomic;
//	S2  — §2's schedule that is not relatively serial (w1[x] interleaves
//	      AtomicUnit(2, T2, T1) and r2[x] depends on w1[x]) but is
//	      relatively serializable, being conflict equivalent to Srs.
func Figure1() *core.Instance {
	t1 := core.T(1, core.R("x"), core.W("x"), core.W("z"), core.R("y"))
	t2 := core.T(2, core.R("y"), core.W("y"), core.R("x"))
	t3 := core.T(3, core.W("x"), core.W("y"), core.W("z"))
	ts := core.MustTxnSet(t1, t2, t3)
	sp := core.NewSpec(ts)
	mustSpec(sp.SetUnits(1, 2, 2, 2))    // [r1x w1x] [w1z r1y]
	mustSpec(sp.SetUnits(1, 3, 2, 1, 1)) // [r1x w1x] [w1z] [r1y]
	mustSpec(sp.SetUnits(2, 1, 1, 2))    // [r2y] [w2y r2x]
	mustSpec(sp.SetUnits(2, 3, 2, 1))    // [r2y w2y] [r2x]
	mustSpec(sp.SetUnits(3, 1, 2, 1))    // [w3x w3y] [w3z]
	mustSpec(sp.SetUnits(3, 2, 2, 1))    // [w3x w3y] [w3z]
	inst := &core.Instance{Set: ts, Spec: sp, Schedules: map[string]*core.Schedule{}}
	add(inst, "Sra", "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
	add(inst, "Srs", "r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
	add(inst, "S2", "r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]")
	return inst
}

// Figure2 returns the example showing that direct conflicts are not
// sufficient for correctness: in schedule S1, w2[y] conflicts with
// neither w1[x] nor r1[z], yet r1[z] is affected by w2[y] through
// T3, so S1 must not count as relatively serial. (S1 is nonetheless
// relatively serializable — it is conflict equivalent to the serial
// schedule T2 T3 T1 — the figure's point concerns Definition 2 only.)
func Figure2() *core.Instance {
	t1 := core.T(1, core.W("x"), core.R("z"))
	t2 := core.T(2, core.W("y"))
	t3 := core.T(3, core.R("y"), core.W("z"))
	ts := core.MustTxnSet(t1, t2, t3)
	sp := core.NewSpec(ts)
	// Atomicity(T1, T2) = [w1x r1z]: absolute, the default.
	mustSpec(sp.SetUnits(1, 3, 1, 1)) // [w1x] [r1z]
	mustSpec(sp.SetUnits(3, 1, 1, 1)) // [r3y] [w3z]
	mustSpec(sp.SetUnits(3, 2, 1, 1)) // [r3y] [w3z]
	inst := &core.Instance{Set: ts, Spec: sp, Schedules: map[string]*core.Schedule{}}
	add(inst, "S1", "w1[x] w2[y] r3[y] w3[z] r1[z]")
	return inst
}

// Figure3 returns §3's relative serialization graph example: schedule
// S2 = w1[x] r2[x] r3[z] w2[y] r3[y] r1[z] whose RSG carries exactly
// the twelve I/D/F/B-labelled arcs drawn in the figure, including the
// F-arc r1[z] -> r2[x] and the B-arc w2[y] -> r3[z] called out in the
// text.
func Figure3() *core.Instance {
	t1 := core.T(1, core.W("x"), core.R("z"))
	t2 := core.T(2, core.R("x"), core.W("y"))
	t3 := core.T(3, core.R("z"), core.R("y"))
	ts := core.MustTxnSet(t1, t2, t3)
	sp := core.NewSpec(ts)
	mustSpec(sp.SetUnits(1, 3, 1, 1)) // [w1x] [r1z]
	// Atomicity(T1, T2) = [w1x r1z]: absolute, the default.
	mustSpec(sp.SetUnits(2, 3, 1, 1)) // [r2x] [w2y]
	mustSpec(sp.SetUnits(2, 1, 1, 1)) // [r2x] [w2y]
	mustSpec(sp.SetUnits(3, 1, 1, 1)) // [r3z] [r3y]
	// Atomicity(T3, T2) = [r3z r3y]: absolute, the default.
	inst := &core.Instance{Set: ts, Spec: sp, Schedules: map[string]*core.Schedule{}}
	add(inst, "S2", "w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]")
	return inst
}

// Figure4 returns §4's separating example: schedule S is relatively
// serial but not relatively consistent — no conflict-equivalent
// relatively atomic schedule exists, because the operations of T1
// cannot be moved out of T3's atomic unit (as seen by T1) while T4 and
// T2 refuse T1 inside their own units. It witnesses the proper
// containment of Farrag-Özsu's relatively consistent class in the
// paper's relatively serializable class (Figure 5).
func Figure4() *core.Instance {
	t1 := core.T(1, core.W("x"), core.W("y"))
	t2 := core.T(2, core.W("z"), core.W("y"))
	t3 := core.T(3, core.W("t"), core.W("z"))
	t4 := core.T(4, core.W("x"), core.W("t"))
	ts := core.MustTxnSet(t1, t2, t3, t4)
	sp := core.NewSpec(ts)
	// T1 is absolute with respect to everyone (defaults).
	// T2: single unit relative to T1 and T3 (defaults); split for T4.
	mustSpec(sp.SetUnits(2, 4, 1, 1)) // [w2z] [w2y]
	// T3: single unit relative to T1 (default); split for T2 and T4.
	mustSpec(sp.SetUnits(3, 2, 1, 1)) // [w3t] [w3z]
	mustSpec(sp.SetUnits(3, 4, 1, 1)) // [w3t] [w3z]
	// T4: single unit relative to T1 (default); split for T2 and T3.
	mustSpec(sp.SetUnits(4, 2, 1, 1)) // [w4x] [w4t]
	mustSpec(sp.SetUnits(4, 3, 1, 1)) // [w4x] [w4t]
	inst := &core.Instance{Set: ts, Spec: sp, Schedules: map[string]*core.Schedule{}}
	add(inst, "S", "w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z]")
	return inst
}

// All returns the four figure instances keyed "fig1".."fig4", in order.
func All() []*NamedInstance {
	return []*NamedInstance{
		{Name: "fig1", Title: "Figure 1: relative atomicity specifications (§2 running example)", Instance: Figure1()},
		{Name: "fig2", Title: "Figure 2: direct conflicts are not sufficient for correctness", Instance: Figure2()},
		{Name: "fig3", Title: "Figure 3: a relative serialization graph", Instance: Figure3()},
		{Name: "fig4", Title: "Figure 4: relatively serial but not relatively consistent", Instance: Figure4()},
	}
}

// NamedInstance pairs a figure instance with its identifier and title.
type NamedInstance struct {
	Name     string
	Title    string
	Instance *core.Instance
}

func add(inst *core.Instance, name, text string) {
	s, err := core.ParseSchedule(inst.Set, text)
	if err != nil {
		panic(fmt.Sprintf("paperfig: schedule %s: %v", name, err))
	}
	inst.Schedules[name] = s
	inst.Names = append(inst.Names, name)
}
