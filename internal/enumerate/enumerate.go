// Package enumerate walks complete schedule spaces of small
// transaction sets and classifies every interleaving into the paper's
// class hierarchy (Figure 5):
//
//	serial ⊆ relatively atomic ⊆ relatively consistent ⊆ relatively serializable
//	serial ⊆ relatively atomic ⊆ relatively serial     ⊆ relatively serializable
//
// The census quantifies the containments — how much larger each class
// is on a given instance — and records witness schedules for every
// proper gap, regenerating Figure 5 as numbers rather than a picture
// (experiment E5).
package enumerate

import (
	"math/big"
	"math/rand"

	"relser/internal/consistent"
	"relser/internal/core"
)

// Count returns the number of interleavings of the transaction set:
// the multinomial (Σ len_i)! / Π (len_i!).
func Count(ts *core.TxnSet) *big.Int {
	total := 0
	for _, t := range ts.Txns() {
		total += t.Len()
	}
	n := new(big.Int).MulRange(1, int64(total))
	for _, t := range ts.Txns() {
		n.Div(n, new(big.Int).MulRange(1, int64(t.Len())))
	}
	return n
}

// Schedules invokes fn for every interleaving of the set, in the
// lexicographic order of transaction choices, and returns how many
// were visited. Iteration stops early if fn returns false.
func Schedules(ts *core.TxnSet, fn func(*core.Schedule) bool) int {
	txns := ts.Txns()
	cursors := make([]int, len(txns))
	buf := make([]core.Op, 0, ts.NumOps())
	visited := 0
	stopped := false
	var walk func()
	walk = func() {
		if stopped {
			return
		}
		if len(buf) == ts.NumOps() {
			visited++
			s, err := core.NewSchedule(ts, buf)
			if err != nil {
				panic("enumerate: generated invalid schedule: " + err.Error()) // unreachable
			}
			if !fn(s) {
				stopped = true
			}
			return
		}
		for i, t := range txns {
			if cursors[i] == t.Len() {
				continue
			}
			buf = append(buf, t.Op(cursors[i]))
			cursors[i]++
			walk()
			cursors[i]--
			buf = buf[:len(buf)-1]
			if stopped {
				return
			}
		}
	}
	walk()
	return visited
}

// Classification holds one schedule's class memberships.
type Classification struct {
	Serial                 bool
	RelativelyAtomic       bool
	RelativelyConsistent   bool
	RelativelySerial       bool
	RelativelySerializable bool
	ConflictSerializable   bool
}

// Classify computes all memberships of a schedule. The relatively
// consistent test is exact (exponential in the worst case); callers
// enumerating large spaces can disable it with withRC = false.
func Classify(s *core.Schedule, sp *core.Spec, withRC bool) Classification {
	var c Classification
	c.Serial = s.IsSerial()
	c.RelativelyAtomic, _ = core.IsRelativelyAtomic(s, sp)
	c.RelativelySerial, _ = core.IsRelativelySerial(s, sp)
	c.RelativelySerializable = core.IsRelativelySerializable(s, sp)
	c.ConflictSerializable = core.IsConflictSerializable(s)
	if withRC {
		c.RelativelyConsistent = consistent.IsRelativelyConsistent(s, sp).Consistent
	}
	return c
}

// Census aggregates a full schedule-space classification.
type Census struct {
	Total                  int
	Serial                 int
	RelativelyAtomic       int
	RelativelyConsistent   int
	RelativelySerial       int
	RelativelySerializable int
	ConflictSerializable   int
	// WithRC records whether the relatively consistent column was
	// computed.
	WithRC bool
	// Witnesses maps gap names to an example schedule, when the gap is
	// non-empty:
	//   "atomic-not-serial"            RA  \ serial
	//   "consistent-not-atomic"        RC  \ RA
	//   "serial-not-consistent"        RS  \ RC   (Figure 4's separation)
	//   "serializable-not-serial"      RSer \ RS
	//   "serializable-not-consistent"  RSer \ RC
	//   "serializable-not-csr"         RSer \ CSR (gain over the classical class)
	Witnesses map[string]*core.Schedule
	// Violations counts the Figure 5 containments; all must be zero.
	ContainmentViolations int
}

// TakeCensus enumerates every interleaving of the instance and counts
// class memberships, verifying the Figure 5 containments on the way.
func TakeCensus(ts *core.TxnSet, sp *core.Spec, withRC bool) Census {
	c := Census{WithRC: withRC, Witnesses: make(map[string]*core.Schedule)}
	Schedules(ts, func(s *core.Schedule) bool {
		accumulate(&c, s, Classify(s, sp, withRC))
		return true
	})
	return c
}

// accumulate folds one classified schedule into a census.
func accumulate(c *Census, s *core.Schedule, cl Classification) {
	c.Total++
	add := func(member bool, n *int) {
		if member {
			*n++
		}
	}
	add(cl.Serial, &c.Serial)
	add(cl.RelativelyAtomic, &c.RelativelyAtomic)
	add(cl.RelativelyConsistent, &c.RelativelyConsistent)
	add(cl.RelativelySerial, &c.RelativelySerial)
	add(cl.RelativelySerializable, &c.RelativelySerializable)
	add(cl.ConflictSerializable, &c.ConflictSerializable)

	witness := func(name string, member bool) {
		if member && c.Witnesses[name] == nil {
			c.Witnesses[name] = s
		}
	}
	witness("atomic-not-serial", cl.RelativelyAtomic && !cl.Serial)
	witness("serializable-not-serial", cl.RelativelySerializable && !cl.RelativelySerial)
	witness("serializable-not-csr", cl.RelativelySerializable && !cl.ConflictSerializable)
	if c.WithRC {
		witness("consistent-not-atomic", cl.RelativelyConsistent && !cl.RelativelyAtomic)
		witness("serial-not-consistent", cl.RelativelySerial && !cl.RelativelyConsistent)
		witness("serializable-not-consistent", cl.RelativelySerializable && !cl.RelativelyConsistent)
	}

	// Figure 5 containments.
	if cl.Serial && !cl.RelativelyAtomic {
		c.ContainmentViolations++
	}
	if cl.RelativelyAtomic && !cl.RelativelySerial {
		c.ContainmentViolations++
	}
	if cl.RelativelySerial && !cl.RelativelySerializable {
		c.ContainmentViolations++
	}
	if c.WithRC {
		if cl.RelativelyAtomic && !cl.RelativelyConsistent {
			c.ContainmentViolations++
		}
		if cl.RelativelyConsistent && !cl.RelativelySerializable {
			c.ContainmentViolations++
		}
	}
}

// SampleCensus classifies k uniformly random interleavings instead of
// the full space, for instances whose multinomial is out of reach. The
// counts estimate class fractions; containments are still verified
// pointwise on every sample.
func SampleCensus(ts *core.TxnSet, sp *core.Spec, k int, seed int64, withRC bool) Census {
	c := Census{WithRC: withRC, Witnesses: make(map[string]*core.Schedule)}
	rng := rand.New(rand.NewSource(seed))
	txns := ts.Txns()
	for i := 0; i < k; i++ {
		cursors := make([]int, len(txns))
		ops := make([]core.Op, 0, ts.NumOps())
		for len(ops) < ts.NumOps() {
			j := rng.Intn(len(txns))
			if cursors[j] == txns[j].Len() {
				continue
			}
			ops = append(ops, txns[j].Op(cursors[j]))
			cursors[j]++
		}
		s, err := core.NewSchedule(ts, ops)
		if err != nil {
			panic("enumerate: generated invalid sample: " + err.Error()) // unreachable
		}
		accumulate(&c, s, Classify(s, sp, withRC))
	}
	return c
}
