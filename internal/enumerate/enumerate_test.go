package enumerate_test

import (
	"testing"

	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/paperfig"
)

func TestCountMultinomial(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("a"), core.W("a")),
		core.T(2, core.R("b"), core.W("b")),
	)
	// 4!/(2!*2!) = 6.
	if got := enumerate.Count(ts); got.Int64() != 6 {
		t.Errorf("Count = %v, want 6", got)
	}
	fig1 := paperfig.Figure1().Set
	// 10!/(4!*3!*3!) = 4200.
	if got := enumerate.Count(fig1); got.Int64() != 4200 {
		t.Errorf("Count(fig1) = %v, want 4200", got)
	}
}

func TestSchedulesVisitsAll(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("a"), core.W("a")),
		core.T(2, core.R("b"), core.W("b")),
	)
	seen := make(map[string]bool)
	n := enumerate.Schedules(ts, func(s *core.Schedule) bool {
		seen[s.String()] = true
		return true
	})
	if n != 6 || len(seen) != 6 {
		t.Errorf("visited %d schedules, %d distinct; want 6", n, len(seen))
	}
	// Program order preserved in every schedule (NewSchedule validated
	// it, but double-check the generator).
	for str := range seen {
		s, err := core.ParseSchedule(ts, str)
		if err != nil {
			t.Fatalf("generated schedule invalid: %v", err)
		}
		if s.Pos(ts.Txn(1).Op(0)) > s.Pos(ts.Txn(1).Op(1)) {
			t.Errorf("program order violated in %s", str)
		}
	}
}

func TestSchedulesEarlyStop(t *testing.T) {
	ts := core.MustTxnSet(
		core.T(1, core.R("a"), core.W("a")),
		core.T(2, core.R("b"), core.W("b")),
	)
	n := enumerate.Schedules(ts, func(*core.Schedule) bool { return false })
	if n != 1 {
		t.Errorf("early stop visited %d, want 1", n)
	}
}

// TestE5Fig5CensusFigure1 is experiment E5 on the Figure 1 instance:
// the census must realize the Figure 5 containments with proper gaps.
func TestE5Fig5CensusFigure1(t *testing.T) {
	inst := paperfig.Figure1()
	c := enumerate.TakeCensus(inst.Set, inst.Spec, true)
	if c.Total != 4200 {
		t.Fatalf("Total = %d, want 4200", c.Total)
	}
	if c.ContainmentViolations != 0 {
		t.Fatalf("%d containment violations", c.ContainmentViolations)
	}
	if c.Serial != 6 {
		t.Errorf("Serial = %d, want 3! = 6", c.Serial)
	}
	// Gaps the paper's theory predicts on this instance.
	if !(c.Serial < c.RelativelyAtomic) {
		t.Errorf("expected serial ⊂ RA: %d vs %d", c.Serial, c.RelativelyAtomic)
	}
	if !(c.RelativelyAtomic <= c.RelativelyConsistent && c.RelativelyConsistent <= c.RelativelySerializable) {
		t.Errorf("chain RA ≤ RC ≤ RSer broken: %d, %d, %d",
			c.RelativelyAtomic, c.RelativelyConsistent, c.RelativelySerializable)
	}
	if !(c.RelativelyAtomic <= c.RelativelySerial && c.RelativelySerial <= c.RelativelySerializable) {
		t.Errorf("chain RA ≤ RS ≤ RSer broken: %d, %d, %d",
			c.RelativelyAtomic, c.RelativelySerial, c.RelativelySerializable)
	}
	// Relative atomicity buys schedules beyond conflict
	// serializability (the paper's whole point): Srs itself is
	// relatively serializable but not CSR.
	if c.Witnesses["serializable-not-csr"] == nil {
		t.Error("expected a relatively serializable, non-conflict-serializable witness")
	}
	if w := c.Witnesses["atomic-not-serial"]; w == nil {
		t.Error("expected a relatively atomic non-serial witness (the paper's Sra exists)")
	} else if ok, _ := core.IsRelativelyAtomic(w, inst.Spec); !ok || w.IsSerial() {
		t.Errorf("bad witness %s", w)
	}
}

// TestE5Fig5CensusFigure4 verifies the Figure 4 separation inside a
// full census: on that instance the relatively serial class strictly
// exceeds the relatively consistent class.
func TestE5Fig5CensusFigure4(t *testing.T) {
	inst := paperfig.Figure4()
	c := enumerate.TakeCensus(inst.Set, inst.Spec, true)
	if c.ContainmentViolations != 0 {
		t.Fatalf("%d containment violations", c.ContainmentViolations)
	}
	if c.Total != 2520 { // 8!/(2!^4)
		t.Fatalf("Total = %d, want 2520", c.Total)
	}
	w := c.Witnesses["serial-not-consistent"]
	if w == nil {
		t.Fatal("Figure 4 predicts a relatively serial, non-consistent schedule")
	}
	if ok, _ := core.IsRelativelySerial(w, inst.Spec); !ok {
		t.Errorf("witness %s is not relatively serial", w)
	}
}

func TestCensusAbsoluteCollapses(t *testing.T) {
	// Under absolute atomicity: RA = serial, RC = CSR = RSer (§2 after
	// Lemma 1); RS may exceed serial (dependency-free interleavings are
	// allowed by Definition 2) but stays within RSer.
	inst := paperfig.Figure2()
	abs := core.NewSpec(inst.Set)
	c := enumerate.TakeCensus(inst.Set, abs, true)
	if c.RelativelyAtomic != c.Serial {
		t.Errorf("absolute: RA (%d) must equal serial (%d)", c.RelativelyAtomic, c.Serial)
	}
	if c.RelativelyConsistent != c.ConflictSerializable {
		t.Errorf("absolute: RC (%d) must equal CSR (%d)", c.RelativelyConsistent, c.ConflictSerializable)
	}
	if c.RelativelySerializable != c.ConflictSerializable {
		t.Errorf("absolute: RSer (%d) must equal CSR (%d) — Lemma 1", c.RelativelySerializable, c.ConflictSerializable)
	}
	if c.ContainmentViolations != 0 {
		t.Errorf("%d containment violations", c.ContainmentViolations)
	}
}

func TestCensusWithoutRC(t *testing.T) {
	inst := paperfig.Figure3()
	c := enumerate.TakeCensus(inst.Set, inst.Spec, false)
	if c.WithRC {
		t.Error("WithRC should be false")
	}
	if c.RelativelyConsistent != 0 {
		t.Error("RC column must stay zero when disabled")
	}
	if c.Total == 0 || c.RelativelySerializable == 0 {
		t.Error("census empty")
	}
}

func TestClassifyPaperSchedules(t *testing.T) {
	inst := paperfig.Figure1()
	cl := enumerate.Classify(inst.Schedules["Sra"], inst.Spec, true)
	if !cl.RelativelyAtomic || !cl.RelativelyConsistent || !cl.RelativelySerial || !cl.RelativelySerializable {
		t.Errorf("Sra classification wrong: %+v", cl)
	}
	if cl.Serial {
		t.Error("Sra is not serial")
	}
	cl2 := enumerate.Classify(inst.Schedules["S2"], inst.Spec, true)
	if cl2.RelativelySerial || !cl2.RelativelySerializable {
		t.Errorf("S2 classification wrong: %+v", cl2)
	}
}

func TestSampleCensus(t *testing.T) {
	inst := paperfig.Figure1()
	c := enumerate.SampleCensus(inst.Set, inst.Spec, 200, 5, false)
	if c.Total != 200 {
		t.Fatalf("Total = %d", c.Total)
	}
	if c.ContainmentViolations != 0 {
		t.Fatalf("%d containment violations in sample", c.ContainmentViolations)
	}
	// Sampled fractions should roughly track the exact census (exact:
	// 1422/4200 ≈ 0.34 relatively serializable); allow wide tolerance.
	frac := float64(c.RelativelySerializable) / float64(c.Total)
	if frac < 0.15 || frac > 0.55 {
		t.Errorf("sampled RSer fraction %.2f implausible (exact ~0.34)", frac)
	}
	// Deterministic for a given seed.
	c2 := enumerate.SampleCensus(inst.Set, inst.Spec, 200, 5, false)
	if c2.RelativelySerializable != c.RelativelySerializable {
		t.Error("SampleCensus not deterministic for a fixed seed")
	}
}
