package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWALAppendReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewWAL(&buf)
	records := []WALRecord{
		{Kind: WALBegin, Instance: 1},
		{Kind: WALWrite, Instance: 1, Object: "x", Value: 42},
		{Kind: WALWrite, Instance: 1, Object: "acct_3_1", Value: -7},
		{Kind: WALCommit, Instance: 1},
		{Kind: WALBegin, Instance: 2},
		{Kind: WALAbort, Instance: 2},
	}
	for _, rec := range records {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.Appended() != len(records) {
		t.Fatalf("Appended = %d", l.Appended())
	}
	got, err := ReadWAL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestWALRecoverAppliesOnlyCommitted(t *testing.T) {
	var buf bytes.Buffer
	l := NewWAL(&buf)
	seq := []WALRecord{
		{Kind: WALBegin, Instance: 1},
		{Kind: WALBegin, Instance: 2},
		{Kind: WALWrite, Instance: 1, Object: "x", Value: 10},
		{Kind: WALWrite, Instance: 2, Object: "y", Value: 20},
		{Kind: WALCommit, Instance: 1},
		{Kind: WALAbort, Instance: 2},
		{Kind: WALBegin, Instance: 3},
		{Kind: WALWrite, Instance: 3, Object: "z", Value: 30},
		// instance 3 never commits: crash before commit record
	}
	for _, rec := range seq {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st, report, err := Recover(bytes.NewReader(buf.Bytes()), map[string]Value{"x": 1, "y": 2, "z": 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Read("x").Value != 10 {
		t.Error("committed write lost")
	}
	if st.Read("y").Value != 2 {
		t.Error("aborted write applied")
	}
	if st.Read("z").Value != 3 {
		t.Error("unfinished write applied")
	}
	if report.Committed != 1 || report.Aborted != 1 || report.Unfinished != 1 {
		t.Errorf("report = %s", report)
	}
}

func TestWALTornTail(t *testing.T) {
	var buf bytes.Buffer
	l := NewWAL(&buf)
	for _, rec := range []WALRecord{
		{Kind: WALBegin, Instance: 1},
		{Kind: WALWrite, Instance: 1, Object: "x", Value: 5},
		{Kind: WALCommit, Instance: 1},
		{Kind: WALBegin, Instance: 2},
		{Kind: WALWrite, Instance: 2, Object: "x", Value: 99},
		{Kind: WALCommit, Instance: 2},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	// Truncate mid-way through the last record: recovery must keep the
	// valid prefix and drop instance 2's commit (or more).
	for cut := len(full) - 1; cut > len(full)-12; cut-- {
		st, _, err := Recover(bytes.NewReader(full[:cut]), map[string]Value{"x": 1})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := st.Read("x").Value; got != 5 {
			t.Errorf("cut %d: x = %d, want instance 1's committed 5", cut, got)
		}
	}
}

func TestWALCorruptRecordEndsPrefix(t *testing.T) {
	var buf bytes.Buffer
	l := NewWAL(&buf)
	for _, rec := range []WALRecord{
		{Kind: WALBegin, Instance: 1},
		{Kind: WALWrite, Instance: 1, Object: "x", Value: 5},
		{Kind: WALCommit, Instance: 1},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	// Flip a payload byte of the middle record.
	data[15] ^= 0xff
	records, err := ReadWAL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) >= 3 {
		t.Errorf("corrupt record accepted: %d records", len(records))
	}
}

func TestWALOrphanWrites(t *testing.T) {
	var buf bytes.Buffer
	l := NewWAL(&buf)
	for _, rec := range []WALRecord{
		{Kind: WALWrite, Instance: 9, Object: "x", Value: 1}, // no begin
		{Kind: WALCommit, Instance: 9},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st, report, err := Recover(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Orphans != 1 {
		t.Errorf("Orphans = %d", report.Orphans)
	}
	if st.Read("x").Value != 0 {
		t.Error("orphan write applied")
	}
}

func TestWALRecordKindString(t *testing.T) {
	for k, want := range map[WALRecordKind]string{
		WALBegin: "begin", WALWrite: "write", WALCommit: "commit", WALAbort: "abort",
		WALRecordKind(9): "WALRecordKind(9)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestOpenWALFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, f, err := OpenWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(WALRecord{Kind: WALBegin, Instance: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(WALRecord{Kind: WALCommit, Instance: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	records, err := ReadWAL(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Errorf("read %d records", len(records))
	}
}

func TestWALEmptyLog(t *testing.T) {
	st, report, err := Recover(bytes.NewReader(nil), map[string]Value{"a": 7})
	if err != nil {
		t.Fatal(err)
	}
	if st.Read("a").Value != 7 || report.Records != 0 {
		t.Error("empty log should yield the initial snapshot")
	}
}
