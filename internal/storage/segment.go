package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Segment format (per-shard segmented WAL, DESIGN.md §5.4):
//
//	header  [magic "RSEG"][version u8][pad u8][shard u16][index u32][baseGSN u64][crc u32]
//	frame*  [size u32][crc u32][gsn u64][legacy record encoding]
//
// All integers little-endian; both CRCs are CRC32-Castagnoli (the same
// table as the single-lane WAL). The frame checksum covers the whole
// payload — GSN included — so a flipped sequence-number bit is damage,
// not a different record. GSNs are strictly increasing within a shard's
// log and every record's GSN exceeds its segment's BaseGSN; a scan
// treats a violation as corruption (duplicated or replayed frames).

const (
	segMagic = "RSEG"

	segVersion = 1

	// SegmentHeaderSize is the fixed encoded size of a segment header.
	SegmentHeaderSize = 24

	// segFrameHeaderSize prefixes every record: payload size + CRC.
	segFrameHeaderSize = 8

	// segGSNSize leads every frame payload.
	segGSNSize = 8

	// maxSegPayload bounds a single frame payload; larger sizes are
	// classified corrupt rather than allocated.
	maxSegPayload = 1 << 20
)

// SegmentHeader identifies one segment of one shard's log.
type SegmentHeader struct {
	Shard int
	// Index orders a shard's segments; rotation publishes index k+1
	// after sealing index k, and compaction drops a prefix of indices.
	Index int
	// BaseGSN is the global sequence number the log had reached when
	// the segment was opened: every record inside carries a GSN
	// strictly greater than it.
	BaseGSN uint64
}

func encodeSegmentHeader(h SegmentHeader) []byte {
	buf := make([]byte, SegmentHeaderSize)
	copy(buf[0:4], segMagic)
	buf[4] = segVersion
	binary.LittleEndian.PutUint16(buf[6:8], uint16(h.Shard))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(h.Index))
	binary.LittleEndian.PutUint64(buf[12:20], h.BaseGSN)
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(buf[:20], walTable))
	return buf
}

// DecodeSegmentHeader validates magic, version and checksum.
func DecodeSegmentHeader(b []byte) (SegmentHeader, error) {
	var h SegmentHeader
	if len(b) < SegmentHeaderSize {
		return h, ErrCorrupt
	}
	if string(b[0:4]) != segMagic || b[4] != segVersion || b[5] != 0 {
		return h, ErrCorrupt
	}
	if crc32.Checksum(b[:20], walTable) != binary.LittleEndian.Uint32(b[20:24]) {
		return h, ErrCorrupt
	}
	h.Shard = int(binary.LittleEndian.Uint16(b[6:8]))
	h.Index = int(binary.LittleEndian.Uint32(b[8:12]))
	h.BaseGSN = binary.LittleEndian.Uint64(b[12:20])
	return h, nil
}

// SegmentRecord pairs a decoded record with its global sequence
// number; recovery merges shards by GSN.
type SegmentRecord struct {
	GSN uint64
	Rec WALRecord
}

// appendSegFrame appends one framed record to buf: the 8-byte frame
// header followed by the payload (GSN + legacy record encoding).
func appendSegFrame(buf []byte, gsn uint64, rec WALRecord) []byte {
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, gsn)
	buf = encodeWALRecord(rec, buf)
	payload := buf[base+segFrameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[base:base+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[base+4:base+8], crc32.Checksum(payload, walTable))
	return buf
}

// ScanSegment decodes one segment: the header, then framed records
// until EOF or the first damaged frame. Like ScanWAL, torn and corrupt
// tails are reported, not returned as errors; err is only a real read
// failure. A segment whose header is incomplete scans as zero records
// with a torn tail (the crash hit before the first frame); a header
// that fails its checksum scans corrupt.
func ScanSegment(r io.Reader) (SegmentHeader, []SegmentRecord, ScanReport, error) {
	br := bufio.NewReader(r)
	var hdr SegmentHeader
	var rep ScanReport
	head := make([]byte, SegmentHeaderSize)
	if n, err := io.ReadFull(br, head); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			rep.Tail = TailTorn
			rep.Detail = fmt.Sprintf("partial segment header (%d of %d bytes)", n, SegmentHeaderSize)
			return hdr, nil, rep, nil
		}
		return hdr, nil, rep, err
	}
	h, err := DecodeSegmentHeader(head)
	if err != nil {
		rep.Tail = TailCorrupt
		rep.Detail = "segment header magic or checksum mismatch"
		return hdr, nil, rep, nil
	}
	hdr = h
	var out []SegmentRecord
	off := int64(SegmentHeaderSize)
	last := hdr.BaseGSN
	for {
		rep.Offset = off
		var frame [segFrameHeaderSize]byte
		n, err := io.ReadFull(br, frame[:])
		if err != nil {
			if errors.Is(err, io.EOF) && n == 0 {
				rep.Tail = TailClean
				return hdr, out, rep, nil
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				rep.Tail = TailTorn
				rep.Detail = fmt.Sprintf("partial frame header (%d of %d bytes)", n, segFrameHeaderSize)
				return hdr, out, rep, nil
			}
			return hdr, out, rep, err
		}
		size := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if size > maxSegPayload || size < segGSNSize+1 {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("implausible payload length %d", size)
			return hdr, out, rep, nil
		}
		payload := make([]byte, size)
		if n, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				rep.Tail = TailTorn
				rep.Detail = fmt.Sprintf("partial payload (%d of %d bytes)", n, size)
				return hdr, out, rep, nil
			}
			return hdr, out, rep, err
		}
		if crc32.Checksum(payload, walTable) != sum {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("checksum mismatch on record %d", rep.Records)
			return hdr, out, rep, nil
		}
		gsn := binary.LittleEndian.Uint64(payload[:segGSNSize])
		rec, err := decodeWALRecord(payload[segGSNSize:])
		if err != nil {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("checksum-valid record %d does not decode", rep.Records)
			return hdr, out, rep, nil
		}
		if gsn <= last {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("GSN %d not increasing (previous %d) on record %d", gsn, last, rep.Records)
			return hdr, out, rep, nil
		}
		last = gsn
		out = append(out, SegmentRecord{GSN: gsn, Rec: rec})
		rep.Records++
		off += segFrameHeaderSize + int64(size)
	}
}
