// Package storage provides the in-memory object store the transaction
// runtime executes against: named objects holding integer values, with
// per-object version counters, transaction-private undo logs for abort,
// and a committed-history log for invariant auditing.
//
// The paper's model (§2) is a set of objects accessed through atomic
// read and write operations; this store realizes exactly that model.
// It is safe for concurrent use: individual reads and writes are
// atomic, guarded by per-stripe latches (objects are partitioned over
// a fixed set of stripes by the shared shard router), so accesses to
// different objects almost never contend. Ordering between operations
// of different transactions is the concurrency-control protocol's job,
// not the store's.
package storage

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"relser/internal/fault"
	"relser/internal/shard"
	"relser/internal/trace"
)

// Value is the content of an object.
type Value int64

// Versioned pairs a value with the monotonically increasing version of
// its object (bumped on every write).
type Versioned struct {
	Value   Value
	Version uint64
}

// storeStripes is the fixed internal latch striping. It is independent
// of the scheduler's shard count: same-object accesses always land on
// the same stripe regardless of either configuration.
const storeStripes = 16

// Store is an in-memory object store.
type Store struct {
	stripes [storeStripes]storeStripe
	router  shard.Router
	writes  atomic.Uint64 // total write count (all objects); also the global write sequence
	reads   atomic.Uint64
	tr      atomic.Pointer[trace.Tracer]
	inj     atomic.Pointer[fault.Injector]
}

type storeStripe struct {
	mu      sync.Mutex
	objects map[string]*Versioned
}

// SetTracer installs a structured-event sink: subsequent reads and
// writes emit store-read / store-write events under the object's
// stripe latch. Pass nil to disable.
func (st *Store) SetTracer(tr *trace.Tracer) {
	st.tr.Store(tr)
}

// tracer returns the installed tracer (nil-safe: a nil *Tracer reports
// Enabled() == false).
func (st *Store) tracer() *trace.Tracer { return st.tr.Load() }

// SetInjector arms the store's latency fault points (store.read.delay,
// store.write.delay): a firing stalls the access under its stripe
// latch, modeling a device hiccup that blocks same-stripe neighbors.
// Pass nil to disarm.
func (st *Store) SetInjector(in *fault.Injector) {
	st.inj.Store(in)
}

// stall sleeps when the latency fault point fires, cut short if ctx is
// canceled — a canceled run stops paying for injected device hiccups.
// Called under the stripe latch.
func (st *Store) stall(ctx context.Context, p fault.Point) {
	if in := st.inj.Load(); in.Fire(p) {
		fault.SleepCtx(ctx, in.Latency(p))
	}
}

// NewStore returns an empty store.
func NewStore() *Store {
	st := &Store{router: shard.NewRouter(storeStripes)}
	for i := range st.stripes {
		st.stripes[i].objects = make(map[string]*Versioned)
	}
	return st
}

func (st *Store) stripe(name string) *storeStripe {
	return &st.stripes[st.router.Shard(name)]
}

// Ensure creates the object with an initial value if it does not
// exist; existing objects are left untouched.
func (st *Store) Ensure(name string, initial Value) {
	sp := st.stripe(name)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.objects[name]; !ok {
		sp.objects[name] = &Versioned{Value: initial}
	}
}

// Load bulk-initializes objects (overwriting existing ones); intended
// for workload setup.
func (st *Store) Load(values map[string]Value) {
	for name, v := range values {
		sp := st.stripe(name)
		sp.mu.Lock()
		sp.objects[name] = &Versioned{Value: v}
		sp.mu.Unlock()
	}
}

// Read returns the current value and version of the object. Reading a
// missing object implicitly creates it with the zero value, matching
// the abstract model where every object always exists.
func (st *Store) Read(name string) Versioned {
	//rsvet:allow ctxflow -- ctx-less convenience wrapper: ReadCtx is the context-aware form
	return st.ReadCtx(context.Background(), name)
}

// ReadCtx is Read under a run context: an injected read stall under
// the stripe latch is cut short when ctx is canceled. The read itself
// always completes — cancellation bounds fault latency, it does not
// make reads fail.
func (st *Store) ReadCtx(ctx context.Context, name string) Versioned {
	st.reads.Add(1)
	sp := st.stripe(name)
	sp.mu.Lock()
	st.stall(ctx, fault.StoreReadDelay)
	v := *sp.object(name)
	if tr := st.tracer(); tr.Wants(trace.KindStoreRead) {
		tr.Emit(trace.Event{Kind: trace.KindStoreRead, Object: name, Value: int64(v.Value), Version: v.Version})
	}
	sp.mu.Unlock()
	return v
}

// Write replaces the object's value, bumping its version, and returns
// the previous state (which undo logs capture).
func (st *Store) Write(name string, v Value) Versioned {
	//rsvet:allow ctxflow -- ctx-less convenience wrapper: writeSeq is the context-aware form
	prev, _ := st.writeSeq(context.Background(), name, v)
	return prev
}

// writeSeq is Write plus the global write sequence number, which undo
// logs use to order cross-transaction rollback. The sequence is drawn
// under the stripe latch, so per-object sequences are monotonic in
// write order — the property RollbackSet relies on. Like ReadCtx, ctx
// only bounds injected stall latency.
func (st *Store) writeSeq(ctx context.Context, name string, v Value) (Versioned, uint64) {
	sp := st.stripe(name)
	sp.mu.Lock()
	st.stall(ctx, fault.StoreWriteDelay)
	seq := st.writes.Add(1)
	obj := sp.object(name)
	prev := *obj
	obj.Value = v
	obj.Version++
	if tr := st.tracer(); tr.Wants(trace.KindStoreWrite) {
		tr.Emit(trace.Event{Kind: trace.KindStoreWrite, Object: name, Value: int64(v), Version: obj.Version})
	}
	sp.mu.Unlock()
	return prev, seq
}

// restore rewinds an object to a previous state (abort path).
func (st *Store) restore(name string, prev Versioned) {
	sp := st.stripe(name)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	obj := sp.object(name)
	obj.Value = prev.Value
	obj.Version++ // versions never move backward, even on undo
}

func (sp *storeStripe) object(name string) *Versioned {
	obj, ok := sp.objects[name]
	if !ok {
		obj = &Versioned{}
		sp.objects[name] = obj
	}
	return obj
}

// Snapshot returns a copy of all object values.
func (st *Store) Snapshot() map[string]Value {
	out := make(map[string]Value)
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		for name, obj := range sp.objects {
			out[name] = obj.Value
		}
		sp.mu.Unlock()
	}
	return out
}

// Objects returns the object names, sorted.
func (st *Store) Objects() []string {
	var out []string
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.Lock()
		for name := range sp.objects {
			out = append(out, name)
		}
		sp.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Stats reports cumulative read and write counts.
func (st *Store) Stats() (reads, writes uint64) {
	return st.reads.Load(), st.writes.Load()
}

// UndoLog records before-images for one transaction so its effects can
// be rolled back on abort. Entries are replayed in reverse.
type UndoLog struct {
	entries []undoEntry
}

type undoEntry struct {
	object string
	prev   Versioned
	seq    uint64 // global write sequence, for cross-log ordering
}

// WriteLogged performs a write through the log, capturing the
// before-image first.
func (log *UndoLog) WriteLogged(st *Store, name string, v Value) {
	//rsvet:allow ctxflow -- ctx-less convenience wrapper: WriteLoggedCtx is the context-aware form
	log.WriteLoggedCtx(context.Background(), st, name, v)
}

// WriteLoggedCtx is WriteLogged under a run context (see ReadCtx for
// the cancellation contract).
func (log *UndoLog) WriteLoggedCtx(ctx context.Context, st *Store, name string, v Value) {
	prev, seq := st.writeSeq(ctx, name, v)
	log.entries = append(log.entries, undoEntry{object: name, prev: prev, seq: seq})
}

// Len returns the number of logged writes.
func (log *UndoLog) Len() int { return len(log.entries) }

// Rollback undoes all logged writes in reverse order and clears the
// log.
func (log *UndoLog) Rollback(st *Store) {
	for i := len(log.entries) - 1; i >= 0; i-- {
		e := log.entries[i]
		st.restore(e.object, e.prev)
	}
	log.entries = nil
}

// Discard forgets the log without undoing (commit path).
func (log *UndoLog) Discard() { log.entries = nil }

// RollbackSet undoes the writes of several transactions together,
// replaying before-images in descending global write order. This is
// required when aborts cascade: if transaction B overwrote A's
// uncommitted write, B's before-image must be restored before A's, or
// A's rollback would be clobbered. All passed logs are cleared.
func RollbackSet(st *Store, logs []*UndoLog) {
	var all []undoEntry
	for _, log := range logs {
		all = append(all, log.entries...)
		log.entries = nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	for _, e := range all {
		st.restore(e.object, e.prev)
	}
}

// History is an append-only record of committed transactions' effects,
// used by workload invariant auditors (e.g. balance conservation in
// the banking scenario).
type History struct {
	mu      sync.Mutex
	commits []Commit
}

// Commit describes one committed transaction's write effects.
type Commit struct {
	Instance int64
	Writes   map[string]Value
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Append records a committed transaction.
func (h *History) Append(c Commit) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.commits = append(h.commits, c)
}

// Len returns the number of committed transactions recorded.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.commits)
}

// Commits returns a copy of the records.
func (h *History) Commits() []Commit {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Commit, len(h.commits))
	copy(out, h.commits)
	return out
}

// String summarizes the store for debugging.
func (st *Store) String() string {
	snap := st.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, snap[n])
	}
	return out
}
