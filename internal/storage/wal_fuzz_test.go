package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"relser/internal/fault"
)

// sampleWAL builds a small multi-transaction log and returns its bytes
// and decoded records.
func sampleWAL(t testing.TB) ([]byte, []WALRecord) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWAL(&buf)
	recs := []WALRecord{
		{Kind: WALBegin, Instance: 1},
		{Kind: WALWrite, Instance: 1, Object: "x", Value: 10},
		{Kind: WALWrite, Instance: 1, Object: "a_longer_object_name", Value: -7},
		{Kind: WALBegin, Instance: 2},
		{Kind: WALWrite, Instance: 2, Object: "y", Value: 1 << 40},
		{Kind: WALCommit, Instance: 1},
		{Kind: WALAbort, Instance: 2},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), recs
}

func recordsEqual(a, b WALRecord) bool {
	return a.Kind == b.Kind && a.Instance == b.Instance && a.Object == b.Object && a.Value == b.Value
}

// requirePrefix asserts that got is a prefix of the original records —
// damage may shorten the log but must never invent or alter a record.
func requirePrefix(t *testing.T, label string, got, want []WALRecord) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: decoded %d records from a log of %d", label, len(got), len(want))
	}
	for i := range got {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("%s: phantom record at %d: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// TestWALTruncationNeverPhantom cuts the log at every byte offset:
// every truncation must decode to a strict prefix of the original
// records, classified clean exactly at record boundaries.
func TestWALTruncationNeverPhantom(t *testing.T) {
	full, recs := sampleWAL(t)
	boundaries := map[int]bool{0: true}
	{
		off := 0
		rest := full
		for len(rest) > 0 {
			size := int(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
			off += 8 + size
			boundaries[off] = true
			rest = full[off:]
		}
	}
	for cut := 0; cut <= len(full); cut++ {
		got, rep, err := ScanWAL(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		requirePrefix(t, fmt.Sprintf("cut %d", cut), got, recs)
		if boundaries[cut] {
			if rep.Tail != TailClean {
				t.Fatalf("cut %d is a boundary but tail = %s (%s)", cut, rep.Tail, rep.Detail)
			}
		} else if rep.Tail != TailTorn {
			t.Fatalf("cut %d is mid-record but tail = %s (%s)", cut, rep.Tail, rep.Detail)
		}
		if rep.Records != len(got) {
			t.Fatalf("cut %d: report says %d records, scan returned %d", cut, rep.Records, len(got))
		}
	}
}

// TestWALBitflipNeverPhantom flips every bit of the log in turn: the
// scan must never panic and never return anything but a prefix of the
// original records.
func TestWALBitflipNeverPhantom(t *testing.T) {
	full, recs := sampleWAL(t)
	for i := 0; i < len(full)*8; i++ {
		mut := append([]byte(nil), full...)
		mut[i/8] ^= 1 << (i % 8)
		got, rep, err := ScanWAL(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		requirePrefix(t, fmt.Sprintf("bit %d", i), got, recs)
		if len(got) == len(recs) && rep.Tail != TailClean {
			t.Fatalf("bit %d: full decode but tail %s", i, rep.Tail)
		}
		if len(got) < len(recs) && rep.Tail == TailClean {
			t.Fatalf("bit %d: lost records but tail clean", i)
		}
	}
}

// FuzzWALDecode throws arbitrary bytes at the scanner: it must never
// panic, and what it returns must be internally consistent.
func FuzzWALDecode(f *testing.F) {
	full, _ := sampleWAL(f)
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	mut := append([]byte(nil), full...)
	mut[9] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, rep, err := ScanWAL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory scan errored: %v", err)
		}
		if rep.Records != len(recs) {
			t.Fatalf("report %d records vs %d returned", rep.Records, len(recs))
		}
		if rep.Offset < 0 || rep.Offset > int64(len(data)) {
			t.Fatalf("offset %d outside log of %d bytes", rep.Offset, len(data))
		}
		for i, rec := range recs {
			if rec.Kind < WALBegin || rec.Kind > WALAbort {
				t.Fatalf("record %d has invalid kind %d", i, rec.Kind)
			}
		}
		// Recovery over whatever the scan accepted must not panic either.
		if _, _, err := Recover(bytes.NewReader(data), nil); err != nil {
			t.Fatalf("recover: %v", err)
		}
	})
}

// TestWALInjectedTorn arms wal.torn at rate 1: the first append tears,
// the log latches fault.ErrCrash, and the bytes on disk scan as a torn
// tail with no phantom records.
func TestWALInjectedTorn(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	w.SetInjector(fault.New(1, fault.MustParseSpec("wal.torn:1")))
	err := w.Append(WALRecord{Kind: WALBegin, Instance: 1})
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("torn append returned %v, want ErrCrash", err)
	}
	if err := w.Append(WALRecord{Kind: WALCommit, Instance: 1}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("post-crash append returned %v, want sticky ErrCrash", err)
	}
	if buf.Len() == 0 {
		t.Fatal("torn write left no partial bytes")
	}
	recs, rep, err := ScanWAL(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 || rep.Tail != TailTorn {
		t.Fatalf("torn log scanned to %d records, tail %s, err %v", len(recs), rep.Tail, err)
	}
}

// TestWALInjectedCorrupt arms wal.corrupt at rate 1: appends succeed
// (the disk lies) but the scan stops at the first record with a
// checksum mismatch.
func TestWALInjectedCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	w.SetInjector(fault.New(1, fault.MustParseSpec("wal.corrupt:1")))
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: 1, Object: "x"}); err != nil {
		t.Fatal(err)
	}
	recs, rep, err := ScanWAL(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 || rep.Tail != TailCorrupt {
		t.Fatalf("corrupt log scanned to %d records, tail %s, err %v", len(recs), rep.Tail, err)
	}
}

// TestWALInjectedShortAndCrash covers the remaining WAL points: short
// writes silently drop the payload (scanned as damage, not a record),
// and wal.crash stops the log with nothing written.
func TestWALInjectedShortAndCrash(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	w.SetInjector(fault.New(1, fault.MustParseSpec("wal.short:1")))
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: 1}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8 {
		t.Fatalf("short write wrote %d bytes, want frame-only 8", buf.Len())
	}
	recs, rep, err := ScanWAL(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 0 || rep.Tail == TailClean {
		t.Fatalf("short log scanned to %d records, tail %s, err %v", len(recs), rep.Tail, err)
	}

	var buf2 bytes.Buffer
	w2 := NewWAL(&buf2)
	w2.SetInjector(fault.New(1, fault.MustParseSpec("wal.crash:1")))
	if err := w2.Append(WALRecord{Kind: WALBegin, Instance: 1}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crash append returned %v", err)
	}
	if buf2.Len() != 0 {
		t.Fatalf("clean crash wrote %d bytes", buf2.Len())
	}
	if _, rep, err := ScanWAL(bytes.NewReader(buf2.Bytes())); err != nil || rep.Tail != TailClean {
		t.Fatalf("empty log tail %s, err %v", rep.Tail, err)
	}
}

// TestScanWALCorruptLength: a complete frame with an implausible
// length is damage (corrupt), not a torn tail.
func TestScanWALCorruptLength(t *testing.T) {
	full, recs := sampleWAL(t)
	mut := append(append([]byte(nil), full...), 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4)
	got, rep, err := ScanWAL(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	requirePrefix(t, "implausible length", got, recs)
	if len(got) != len(recs) || rep.Tail != TailCorrupt {
		t.Fatalf("got %d records, tail %s", len(got), rep.Tail)
	}
	if rep.Offset != int64(len(full)) {
		t.Fatalf("bad-record offset %d, want %d", rep.Offset, len(full))
	}
}

// FuzzSegmentDecode feeds arbitrary bytes to the segment scanner (and
// the segmented recovery on top of it): no input may panic, report
// counters must match the decoded records, and GSNs must come out
// strictly increasing.
func FuzzSegmentDecode(f *testing.F) {
	full, _ := sampleSegment(f)
	f.Add(full)
	f.Add(full[:SegmentHeaderSize])
	f.Add(full[:SegmentHeaderSize+5])
	f.Add(full[:10])
	f.Add([]byte{})
	flipped := append([]byte(nil), full...)
	flipped[SegmentHeaderSize+segFrameHeaderSize+3] ^= 0x20
	f.Add(flipped)
	huge := append([]byte(nil), full...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, rep, err := ScanSegment(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ScanSegment returned a real error on bytes: %v", err)
		}
		if rep.Records != len(recs) {
			t.Fatalf("report says %d records, scan returned %d", rep.Records, len(recs))
		}
		if len(recs) > 0 && rep.Tail == TailClean && rep.Offset == 0 {
			t.Fatal("records decoded but offset never advanced")
		}
		last := hdr.BaseGSN
		for i, r := range recs {
			if r.GSN <= last {
				t.Fatalf("record %d: GSN %d not above %d", i, r.GSN, last)
			}
			last = r.GSN
		}
		// Segmented recovery over the same bytes must also be total.
		set := &SegmentSet{Shards: map[int][][]byte{0: {data}}}
		if _, _, err := RecoverSegmented(set, map[string]Value{"seed": 1}); err != nil {
			t.Fatalf("RecoverSegmented: %v", err)
		}
	})
}

// FuzzSnapshotDecode: arbitrary bytes never panic the snapshot
// decoder, and anything that decodes re-encodes to the same content.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(EncodeSnapshot(7, map[string]Value{"x": 1, "y": -2}))
	f.Add(EncodeSnapshot(0, nil))
	f.Add([]byte{})
	f.Add([]byte("RSNP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		gsn, snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		gsn2, snap2, err := DecodeSnapshot(EncodeSnapshot(gsn, snap))
		if err != nil || gsn2 != gsn || len(snap2) != len(snap) {
			t.Fatalf("re-encode round trip broke: gsn %d->%d, %d->%d entries, err %v",
				gsn, gsn2, len(snap), len(snap2), err)
		}
		for k, v := range snap {
			if snap2[k] != v {
				t.Fatalf("entry %q: %d != %d", k, snap2[k], v)
			}
		}
	})
}
