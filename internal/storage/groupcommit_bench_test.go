package storage

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkGroupCommit measures synchronous commit appends against a
// simulated 20µs-fsync device: parallel producers on the same lanes
// share fsyncs, which is the whole point of group commit.
func BenchmarkGroupCommit(b *testing.B) {
	for _, lanes := range []int{1, 4} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			mem := NewMemBackend()
			mem.SyncDelay = 20 * time.Microsecond
			w, err := NewShardedWAL(mem, SegmentedOptions{Shards: lanes})
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := next.Add(1)
				for pb.Next() {
					if err := w.AppendSync(WALRecord{Kind: WALCommit, Instance: id}); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchSegmentSet logs txns single-writer transactions across lanes
// and returns the crash image for recovery benchmarks.
func benchSegmentSet(b *testing.B, lanes, txns int) *SegmentSet {
	b.Helper()
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: lanes, SegmentBytes: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= txns; i++ {
		logAsync(b, w, int64(i))
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	set, err := mem.SegmentSet()
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkParallelRecovery replays a fixed history through the
// concurrent per-shard scan + cross-shard merge.
func BenchmarkParallelRecovery(b *testing.B) {
	for _, lanes := range []int{1, 4} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			set := benchSegmentSet(b, lanes, 5000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := RecoverSegmented(set, nil)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Clean() || rep.Committed != 5000 {
					b.Fatalf("bad recovery: %s", rep)
				}
			}
		})
	}
}
