package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSegmentHeaderRoundTrip(t *testing.T) {
	want := SegmentHeader{Shard: 7, Index: 42, BaseGSN: 1 << 40}
	enc := encodeSegmentHeader(want)
	if len(enc) != SegmentHeaderSize {
		t.Fatalf("encoded header is %d bytes, want %d", len(enc), SegmentHeaderSize)
	}
	got, err := DecodeSegmentHeader(enc)
	if err != nil || got != want {
		t.Fatalf("round trip: got %+v err %v, want %+v", got, err, want)
	}
	// Every single-bit flip must be caught by magic, version or CRC.
	for i := 0; i < SegmentHeaderSize*8; i++ {
		mut := append([]byte(nil), enc...)
		mut[i/8] ^= 1 << (i % 8)
		if _, err := DecodeSegmentHeader(mut); err == nil {
			t.Fatalf("bit flip %d went undetected", i)
		}
	}
	if _, err := DecodeSegmentHeader(enc[:SegmentHeaderSize-1]); err == nil {
		t.Fatal("short header decoded")
	}
}

// sampleSegment builds one lane's single segment with a known record
// mix and returns its bytes plus the records.
func sampleSegment(t testing.TB) ([]byte, []WALRecord) {
	t.Helper()
	recs := []WALRecord{
		{Kind: WALBegin, Instance: 1},
		{Kind: WALWrite, Instance: 1, Object: "x", Value: 10},
		{Kind: WALWrite, Instance: 1, Object: "a_longer_object_name", Value: -7},
		{Kind: WALBegin, Instance: 2},
		{Kind: WALWrite, Instance: 2, Object: "y", Value: 1 << 40},
		{Kind: WALCommit, Instance: 1},
		{Kind: WALAbort, Instance: 2},
	}
	buf := encodeSegmentHeader(SegmentHeader{Shard: 0, Index: 0, BaseGSN: 0})
	for i, rec := range recs {
		buf = appendSegFrame(buf, uint64(i+1), rec)
	}
	return buf, recs
}

// segFrameBoundaries returns every byte offset in seg that ends a
// whole unit (header or frame).
func segFrameBoundaries(seg []byte) map[int]bool {
	b := map[int]bool{0: true}
	if len(seg) < SegmentHeaderSize {
		return b
	}
	off := SegmentHeaderSize
	b[off] = true
	for off+segFrameHeaderSize <= len(seg) {
		size := int(uint32(seg[off]) | uint32(seg[off+1])<<8 | uint32(seg[off+2])<<16 | uint32(seg[off+3])<<24)
		off += segFrameHeaderSize + size
		if off > len(seg) {
			break
		}
		b[off] = true
	}
	return b
}

// TestScanSegmentTruncationNeverPhantom cuts a segment at every byte
// offset: each truncation must decode to a strict prefix, classified
// clean exactly at unit boundaries (past the header) and torn anywhere
// else.
func TestScanSegmentTruncationNeverPhantom(t *testing.T) {
	full, recs := sampleSegment(t)
	boundaries := segFrameBoundaries(full)
	for cut := 0; cut <= len(full); cut++ {
		_, got, rep, err := ScanSegment(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut %d: decoded %d records from a log of %d", cut, len(got), len(recs))
		}
		for i := range got {
			if !recordsEqual(got[i].Rec, recs[i]) {
				t.Fatalf("cut %d: phantom record at %d: %+v", cut, i, got[i].Rec)
			}
			if got[i].GSN != uint64(i+1) {
				t.Fatalf("cut %d: record %d carries GSN %d", cut, i, got[i].GSN)
			}
		}
		wantClean := boundaries[cut] && cut >= SegmentHeaderSize
		if wantClean && rep.Tail != TailClean {
			t.Fatalf("cut %d is a boundary but tail = %s (%s)", cut, rep.Tail, rep.Detail)
		}
		if !wantClean && rep.Tail == TailClean {
			t.Fatalf("cut %d is mid-unit but tail clean", cut)
		}
	}
}

// TestScanSegmentGSNMonotonicity: a frame whose GSN repeats or goes
// backwards is damage (replayed or duplicated frames), not data.
func TestScanSegmentGSNMonotonicity(t *testing.T) {
	for _, gsns := range [][]uint64{{5, 5}, {5, 3}, {0, 1}} {
		buf := encodeSegmentHeader(SegmentHeader{Shard: 0, Index: 0, BaseGSN: 0})
		for _, g := range gsns {
			buf = appendSegFrame(buf, g, WALRecord{Kind: WALBegin, Instance: int64(g)})
		}
		_, got, rep, err := ScanSegment(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if gsns[0] == 0 {
			// First GSN must exceed BaseGSN (0 here).
			if len(got) != 0 || rep.Tail != TailCorrupt {
				t.Fatalf("gsns %v: got %d records, tail %s", gsns, len(got), rep.Tail)
			}
			continue
		}
		if len(got) != 1 || rep.Tail != TailCorrupt {
			t.Fatalf("gsns %v: got %d records, tail %s (%s)", gsns, len(got), rep.Tail, rep.Detail)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := map[string]Value{"x": 10, "y": -3, "a_longer_object_name": 1 << 50}
	enc := EncodeSnapshot(77, snap)
	gsn, got, err := DecodeSnapshot(enc)
	if err != nil || gsn != 77 {
		t.Fatalf("decode: gsn %d err %v", gsn, err)
	}
	if len(got) != len(snap) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(snap))
	}
	for k, v := range snap {
		if got[k] != v {
			t.Fatalf("entry %q: got %d want %d", k, got[k], v)
		}
	}
	if !bytes.Equal(enc, EncodeSnapshot(77, snap)) {
		t.Fatal("snapshot encoding is not deterministic")
	}
	for i := 0; i < len(enc)*8; i++ {
		mut := append([]byte(nil), enc...)
		mut[i/8] ^= 1 << (i % 8)
		if _, _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("bit flip %d went undetected", i)
		}
	}
	if _, _, err := DecodeSnapshot(nil); err == nil {
		t.Fatal("nil snapshot decoded")
	}
}

// TestScanSegmentBitflipNeverPhantom flips every bit: never a panic,
// never anything but a prefix.
func TestScanSegmentBitflipNeverPhantom(t *testing.T) {
	full, recs := sampleSegment(t)
	for i := 0; i < len(full)*8; i++ {
		mut := append([]byte(nil), full...)
		mut[i/8] ^= 1 << (i % 8)
		_, got, rep, err := ScanSegment(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("bit %d: decoded %d records from a log of %d", i, len(got), len(recs))
		}
		for j := range got {
			if !recordsEqual(got[j].Rec, recs[j]) {
				t.Fatalf("bit %d: phantom record at %d", i, j)
			}
		}
		if len(got) < len(recs) && rep.Tail == TailClean {
			t.Fatalf("bit %d: lost records but tail clean", i)
		}
	}
}

func TestSegFileNames(t *testing.T) {
	if got := segFileName(7); got != "seg-000007.wal" {
		t.Fatalf("segFileName(7) = %q", got)
	}
	if got := snapFileName(255); got != "snapshot-00000000000000ff.snap" {
		t.Fatalf("snapFileName(255) = %q", got)
	}
}

// TestSnapshotErrorsNameTheFile: snapshot read/decode failures carry
// the path (rsreplay -from-snapshot diagnosability), ErrCorrupt stays
// reachable through errors.Is, and ReadWALDir records which damaged
// snapshot files it skipped instead of dropping them silently.
func TestSnapshotErrorsNameTheFile(t *testing.T) {
	dir := t.TempDir()
	good := EncodeSnapshot(7, map[string]Value{"x": 1})

	// Missing file.
	_, _, err := ReadSnapshotFile(filepath.Join(dir, "missing.snap"))
	var se *SnapshotError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "missing.snap") || se.Shard != -1 {
		t.Fatalf("missing file: %v", err)
	}

	// Corrupt file: path in the message, ErrCorrupt underneath.
	bad := filepath.Join(dir, "snapshot-0000000000000001.snap")
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadSnapshotFile(bad)
	if !errors.As(err, &se) || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), bad) {
		t.Fatalf("corrupt file: %v", err)
	}

	// A valid file round-trips.
	ok := filepath.Join(dir, "snapshot-0000000000000007.snap")
	if err := os.WriteFile(ok, good, 0o644); err != nil {
		t.Fatal(err)
	}
	gsn, snap, err := ReadSnapshotFile(ok)
	if err != nil || gsn != 7 || snap["x"] != 1 {
		t.Fatalf("valid file: gsn=%d snap=%v err=%v", gsn, snap, err)
	}

	// LatestSnapshot skips the damaged newer-looking candidate... here
	// the corrupt file has the LOWER gsn, so the valid one wins; then
	// remove it and the corrupt one's error surfaces.
	path, gsn, _, err := LatestSnapshot(dir)
	if err != nil || path != ok || gsn != 7 {
		t.Fatalf("latest: path=%s gsn=%d err=%v", path, gsn, err)
	}
	if err := os.Remove(ok); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LatestSnapshot(dir); !errors.As(err, &se) || !strings.Contains(err.Error(), bad) {
		t.Fatalf("all-damaged latest: %v", err)
	}

	// Empty dir: os.ErrNotExist class.
	if _, _, _, err := LatestSnapshot(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty dir: %v", err)
	}

	// ReadWALDir still falls back past the damaged snapshot but records
	// it with its path.
	set, err := ReadWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Snapshot != nil {
		t.Fatal("damaged snapshot decoded")
	}
	if len(set.DamagedSnapshots) != 1 || !strings.Contains(set.DamagedSnapshots[0].Error(), bad) {
		t.Fatalf("damaged snapshots: %v", set.DamagedSnapshots)
	}
}
