package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"relser/internal/fault"
)

// laneInstance returns the first instance id >= from that routes to
// lane — tests use it to place transactions on chosen shards.
func laneInstance(w *ShardedWAL, lane int, from int64) int64 {
	for id := from; ; id++ {
		if w.router.ShardID(id) == lane {
			return id
		}
	}
}

// logTxn appends begin, one write per (object, value) pair, and a
// commit for instance id, waiting for the commit's durability.
func logTxn(t testing.TB, w *ShardedWAL, id int64, object string, v Value) {
	t.Helper()
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: id}); err != nil {
		t.Fatalf("begin %d: %v", id, err)
	}
	if err := w.Append(WALRecord{Kind: WALWrite, Instance: id, Object: object, Value: v}); err != nil {
		t.Fatalf("write %d: %v", id, err)
	}
	if err := w.AppendSync(WALRecord{Kind: WALCommit, Instance: id}); err != nil {
		t.Fatalf("commit %d: %v", id, err)
	}
}

// TestShardedWALConcurrentRecoveryEquality drives concurrent producers
// through a rotating 4-lane log and checks that recovery reproduces
// exactly the acknowledged commits.
func TestShardedWALConcurrentRecoveryEquality(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 4, SegmentBytes: 512, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	const producers, txns = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				id := int64(g*1000 + i + 1)
				logTxn(t, w, id, fmt.Sprintf("t%d", id), Value(id))
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	stats := w.Stats()
	if stats.Appends != producers*txns*3 {
		t.Fatalf("appends = %d, want %d", stats.Appends, producers*txns*3)
	}
	if stats.Rotations == 0 {
		t.Fatal("512-byte segments never rotated")
	}
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	st, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("recovery not clean: %s", rep)
	}
	if rep.Committed != producers*txns {
		t.Fatalf("recovered %d commits, want %d", rep.Committed, producers*txns)
	}
	snap := st.Snapshot()
	for g := 0; g < producers; g++ {
		for i := 0; i < txns; i++ {
			id := int64(g*1000 + i + 1)
			if got := snap[fmt.Sprintf("t%d", id)]; got != Value(id) {
				t.Fatalf("t%d = %d after recovery, want %d", id, got, id)
			}
		}
	}
}

// TestShardedWALGroupCommitBatching holds the committer on a slow
// fsync while async appends pile up: far fewer group commits than
// records must result.
func TestShardedWALGroupCommitBatching(t *testing.T) {
	mem := NewMemBackend()
	mem.SyncDelay = 2 * time.Millisecond
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 1, QueueDepth: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 1; i <= n; i++ {
		logAsync(t, w, int64(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	stats := w.Stats()
	if stats.GroupCommits >= n {
		t.Fatalf("%d group commits for %d transactions: no batching", stats.GroupCommits, n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func logAsync(t testing.TB, w *ShardedWAL, id int64) {
	t.Helper()
	for _, rec := range []WALRecord{
		{Kind: WALBegin, Instance: id},
		{Kind: WALWrite, Instance: id, Object: "o", Value: Value(id)},
		{Kind: WALCommit, Instance: id},
	} {
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
}

func TestShardedWALAppendAfterClose(t *testing.T) {
	w, err := NewShardedWAL(NewMemBackend(), SegmentedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: 1}); err == nil {
		t.Fatal("append on closed WAL succeeded")
	}
	if err := w.AppendSync(WALRecord{Kind: WALCommit, Instance: 1}); err == nil {
		t.Fatal("append-sync on closed WAL succeeded")
	}
}

// TestShardedWALInjectedTorn arms wal.torn on the first append: the
// caller sees the crash, the lane latches it, and recovery finds a
// torn tail with zero phantom commits.
func TestShardedWALInjectedTorn(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	w.SetInjector(fault.New(1, fault.MustParseSpec("wal.torn:1")))
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: 1}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("torn append returned %v, want ErrCrash", err)
	}
	if err := w.Append(WALRecord{Kind: WALWrite, Instance: 1, Object: "x", Value: 1}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("append after crash returned %v, want latched ErrCrash", err)
	}
	if err := w.Err(); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("Err() = %v, want ErrCrash", err)
	}
	w.Close() //nolint:errcheck // crash latched, error expected
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := rep.FirstDamagedKind(TailTorn)
	if !ok || sh.Shard != 0 {
		t.Fatalf("want torn shard 0, got %+v (ok=%v)", sh, ok)
	}
	if rep.Committed != 0 || rep.Records != 0 {
		t.Fatalf("phantom records after torn first append: %s", rep)
	}
}

// TestShardedWALGroupPartial arms wal.group.partial after one durable
// transaction: the second transaction's frame is cut mid-batch, the
// run crashes, and recovery keeps exactly the first transaction.
func TestShardedWALGroupPartial(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	logTxn(t, w, 1, "x", 10)
	w.SetInjector(fault.New(7, fault.MustParseSpec("wal.group.partial:1")))
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: 2}); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("partial append returned %v, want ErrCrash", err)
	}
	if err := w.Sync(); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("Sync() = %v, want latched ErrCrash", err)
	}
	w.Close() //nolint:errcheck // crash latched, error expected
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	st, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed != 1 {
		t.Fatalf("recovered %d commits, want 1: %s", rep.Committed, rep)
	}
	if got := st.Snapshot()["x"]; got != 10 {
		t.Fatalf("x = %d after recovery, want 10", got)
	}
}

// TestShardedWALRotateCrash covers the crash between rotation and
// publish: the sealed segments survive, the half-created one stays
// unpublished (a .tmp file on disk), and recovery soundly ignores it —
// every acknowledged commit is recovered, nothing else.
func TestShardedWALRotateCrash(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, SegmentedOptions{Shards: 1, SegmentBytes: 160, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	logTxn(t, w, 1, "x", 10)
	w.SetInjector(fault.New(3, fault.MustParseSpec("wal.rotate.crash:1")))
	var crashErr error
	for i := 0; i < 100; i++ {
		rec := WALRecord{Kind: WALWrite, Instance: 2, Object: fmt.Sprintf("y%d", i), Value: Value(i)}
		if i == 0 {
			rec = WALRecord{Kind: WALBegin, Instance: 2}
		}
		if crashErr = w.AppendSync(rec); crashErr != nil {
			break
		}
	}
	if !errors.Is(crashErr, fault.ErrCrash) {
		t.Fatalf("rotation never crashed (last err %v)", crashErr)
	}
	w.Close() //nolint:errcheck // crash latched, error expected

	tmp, err := filepath.Glob(filepath.Join(dir, "shard-00", "*.tmp"))
	if err != nil || len(tmp) != 1 {
		t.Fatalf("want exactly one unpublished .tmp segment, got %v (err %v)", tmp, err)
	}
	set, err := ReadWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Unpublished != 1 {
		t.Fatalf("Unpublished = %d, want 1", set.Unpublished)
	}
	st, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		// The published chain is intact; only the unpublished segment
		// (and the unacknowledged suffix) is gone.
		t.Fatalf("recovery not clean after rotate crash: %s", rep)
	}
	if rep.Unpublished != 1 {
		t.Fatalf("report.Unpublished = %d, want 1", rep.Unpublished)
	}
	snap := st.Snapshot()
	if snap["x"] != 10 {
		t.Fatalf("acknowledged commit lost: x = %d", snap["x"])
	}
	if rep.Committed != 1 {
		t.Fatalf("recovered %d commits, want 1 (txn 2 never committed): %s", rep.Committed, rep)
	}
}

// TestShardedWALCheckpoint: compaction snapshots the store, seals and
// drops the old segments, and recovery equals the live history.
func TestShardedWALCheckpoint(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 2, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	expected := map[string]Value{}
	for i := 1; i <= 20; i++ {
		obj := fmt.Sprintf("t%d", i)
		logTxn(t, w, int64(i), obj, Value(i))
		expected[obj] = Value(i)
	}

	// Refused while a transaction is open.
	if err := w.Append(WALRecord{Kind: WALBegin, Instance: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(expected); err == nil {
		t.Fatal("checkpoint with an open transaction succeeded")
	}
	if err := w.AppendSync(WALRecord{Kind: WALAbort, Instance: 100}); err != nil {
		t.Fatal(err)
	}

	if err := w.Checkpoint(expected); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := w.Stats().Compactions; got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	for i := 21; i <= 30; i++ {
		obj := fmt.Sprintf("t%d", i)
		logTxn(t, w, int64(i), obj, Value(i))
		expected[obj] = Value(i)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	if set.Snapshot == nil || set.SnapshotGSN == 0 {
		t.Fatal("no snapshot after checkpoint")
	}
	for s, segs := range set.Shards {
		// Only post-checkpoint segments remain (a handful for 10 txns).
		if len(segs) > 5 {
			t.Fatalf("shard %d still holds %d segments after compaction", s, len(segs))
		}
	}
	st, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("recovery not clean: %s", rep)
	}
	if rep.Committed != 10 {
		t.Fatalf("replayed %d commits, want 10 (20 compacted away): %s", rep.Committed, rep)
	}
	if rep.InSnapshot != 0 {
		t.Fatalf("%d snapshot-covered commits still in segments after compaction", rep.InSnapshot)
	}
	snap := st.Snapshot()
	for obj, want := range expected {
		if snap[obj] != want {
			t.Fatalf("%s = %d after recovery, want %d", obj, snap[obj], want)
		}
	}
}

// TestShardedWALEmptyLogRecovers: a freshly opened log (headers only)
// must recover cleanly with zero records.
func TestShardedWALEmptyLogRecovers(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Shards) != 4 {
		t.Fatalf("want 4 published lanes, got %d", len(set.Shards))
	}
	st, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 0 {
		t.Fatalf("empty log: %s", rep)
	}
	if got := len(st.Snapshot()); got != 0 {
		t.Fatalf("empty log recovered %d objects", got)
	}
}
