package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"relser/internal/trace"
)

// This file adds durability to the storage substrate: a write-ahead
// log with checksummed records and redo recovery. The paper's theory
// does not require durability, but the execution side of the
// reproduction is meant to be adoptable as a small transactional
// engine, and recovery interacts with the runtime's abort machinery
// (only committed transactions' effects survive a crash).
//
// Log format: length-prefixed binary records, each trailed by a CRC32
// (Castagnoli) over the payload. Recovery replays the log in order,
// buffering each transaction's writes until its commit record; torn or
// corrupt tails are detected by the checksum and cleanly ignored, as
// are transactions with no commit record.

// WALRecordKind tags log records.
type WALRecordKind uint8

const (
	// WALBegin marks the start of a transaction instance.
	WALBegin WALRecordKind = iota + 1
	// WALWrite records one object write (object, value).
	WALWrite
	// WALCommit seals an instance; recovery applies its writes.
	WALCommit
	// WALAbort voids an instance; recovery discards its writes.
	WALAbort
)

// String names the kind.
func (k WALRecordKind) String() string {
	switch k {
	case WALBegin:
		return "begin"
	case WALWrite:
		return "write"
	case WALCommit:
		return "commit"
	case WALAbort:
		return "abort"
	default:
		return fmt.Sprintf("WALRecordKind(%d)", uint8(k))
	}
}

// WALRecord is one decoded log record.
type WALRecord struct {
	Kind     WALRecordKind
	Instance int64
	Object   string
	Value    Value
}

// ErrCorrupt reports a checksum or framing failure; recovery treats it
// as the end of the valid log prefix.
var ErrCorrupt = errors.New("storage: corrupt WAL record")

var walTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only write-ahead log. It is safe for concurrent
// use; Append is atomic per record.
type WAL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	// appended counts records written through this handle.
	appended int
	tr       *trace.Tracer
}

// SetTracer installs a structured-event sink: every appended record
// also emits a wal-append event. Pass nil to disable.
func (l *WAL) SetTracer(tr *trace.Tracer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tr = tr
}

// NewWAL returns a log writing to w. Callers owning files should pass
// a buffered or direct handle and arrange syncing themselves; the
// simulator's crash model is process-level, not media-level.
func NewWAL(w io.Writer) *WAL { return &WAL{w: w} }

// OpenWALFile creates (or truncates) a log file.
func OpenWALFile(path string) (*WAL, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return NewWAL(f), f, nil
}

// Append writes one record.
func (l *WAL) Append(rec WALRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	payload := encodeWALRecord(rec, l.buf[:0])
	l.buf = payload // reuse the arena next time
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walTable))
	if _, err := l.w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.appended++
	if l.tr.Enabled() {
		l.tr.Emit(trace.Event{
			Kind: trace.KindWALAppend, Instance: rec.Instance,
			Object: rec.Object, Op: rec.Kind.String(), Value: int64(rec.Value),
		})
	}
	return nil
}

// Appended returns the number of records written.
func (l *WAL) Appended() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

func encodeWALRecord(rec WALRecord, buf []byte) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = binary.AppendVarint(buf, rec.Instance)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Object)))
	buf = append(buf, rec.Object...)
	buf = binary.AppendVarint(buf, int64(rec.Value))
	return buf
}

func decodeWALRecord(payload []byte) (WALRecord, error) {
	var rec WALRecord
	if len(payload) < 1 {
		return rec, ErrCorrupt
	}
	rec.Kind = WALRecordKind(payload[0])
	if rec.Kind < WALBegin || rec.Kind > WALAbort {
		return rec, ErrCorrupt
	}
	rest := payload[1:]
	inst, n := binary.Varint(rest)
	if n <= 0 {
		return rec, ErrCorrupt
	}
	rec.Instance = inst
	rest = rest[n:]
	olen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < olen {
		return rec, ErrCorrupt
	}
	rest = rest[n:]
	rec.Object = string(rest[:olen])
	rest = rest[olen:]
	val, n := binary.Varint(rest)
	if n <= 0 || n != len(rest) {
		return rec, ErrCorrupt
	}
	rec.Value = Value(val)
	return rec, nil
}

// ReadWAL decodes records until EOF or the first corrupt/torn record,
// returning the valid prefix. A torn tail is not an error: it is the
// expected shape of a crash.
func ReadWAL(r io.Reader) ([]WALRecord, error) {
	br := bufio.NewReader(r)
	var out []WALRecord
	for {
		var frame [8]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, nil
			}
			return out, err
		}
		size := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if size > 1<<20 {
			return out, nil // implausible length: treat as torn tail
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, nil // torn record
			}
			return out, err
		}
		if crc32.Checksum(payload, walTable) != sum {
			return out, nil // corrupt record ends the valid prefix
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

// Recover rebuilds a store from a log: writes of an instance are
// buffered from its begin record and applied in log order at its
// commit record; aborted or unfinished instances leave no trace. The
// initial snapshot supplies pre-log object values.
func Recover(r io.Reader, initial map[string]Value) (*Store, *RecoveryReport, error) {
	records, err := ReadWAL(r)
	if err != nil {
		return nil, nil, err
	}
	st := NewStore()
	st.Load(initial)
	report := &RecoveryReport{}
	type pendingWrite struct {
		object string
		value  Value
	}
	pending := make(map[int64][]pendingWrite)
	for _, rec := range records {
		report.Records++
		switch rec.Kind {
		case WALBegin:
			pending[rec.Instance] = nil
		case WALWrite:
			if _, ok := pending[rec.Instance]; !ok {
				report.Orphans++
				continue
			}
			pending[rec.Instance] = append(pending[rec.Instance], pendingWrite{rec.Object, rec.Value})
		case WALCommit:
			for _, w := range pending[rec.Instance] {
				st.Write(w.object, w.value)
			}
			delete(pending, rec.Instance)
			report.Committed++
		case WALAbort:
			delete(pending, rec.Instance)
			report.Aborted++
		}
	}
	report.Unfinished = len(pending)
	return st, report, nil
}

// RecoveryReport summarizes a recovery pass.
type RecoveryReport struct {
	Records    int
	Committed  int
	Aborted    int
	Unfinished int
	// Orphans counts write records whose instance never began (only
	// possible with a mangled log).
	Orphans int
}

// String renders the report.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("recovered %d records: %d committed, %d aborted, %d unfinished, %d orphans",
		r.Records, r.Committed, r.Aborted, r.Unfinished, r.Orphans)
}
