package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"relser/internal/fault"
	"relser/internal/trace"
)

// This file adds durability to the storage substrate: a write-ahead
// log with checksummed records and redo recovery. The paper's theory
// does not require durability, but the execution side of the
// reproduction is meant to be adoptable as a small transactional
// engine, and recovery interacts with the runtime's abort machinery
// (only committed transactions' effects survive a crash).
//
// Log format: length-prefixed binary records, each trailed by a CRC32
// (Castagnoli) over the payload. Recovery replays the log in order,
// buffering each transaction's writes until its commit record; torn or
// corrupt tails are detected by the checksum and cleanly ignored, as
// are transactions with no commit record.

// WALRecordKind tags log records.
type WALRecordKind uint8

const (
	// WALBegin marks the start of a transaction instance.
	WALBegin WALRecordKind = iota + 1
	// WALWrite records one object write (object, value).
	WALWrite
	// WALCommit seals an instance; recovery applies its writes.
	WALCommit
	// WALAbort voids an instance; recovery discards its writes.
	WALAbort
)

// String names the kind.
func (k WALRecordKind) String() string {
	switch k {
	case WALBegin:
		return "begin"
	case WALWrite:
		return "write"
	case WALCommit:
		return "commit"
	case WALAbort:
		return "abort"
	default:
		return fmt.Sprintf("WALRecordKind(%d)", uint8(k))
	}
}

// WALRecord is one decoded log record.
type WALRecord struct {
	Kind     WALRecordKind
	Instance int64
	Object   string
	Value    Value
}

// ErrCorrupt reports a checksum or framing failure; recovery treats it
// as the end of the valid log prefix.
var ErrCorrupt = errors.New("storage: corrupt WAL record")

var walTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only write-ahead log. It is safe for concurrent
// use; Append is atomic per record.
type WAL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	// appended counts records written through this handle.
	appended int
	tr       *trace.Tracer
	inj      *fault.Injector
	// crashed latches an injected crash: every later append fails with
	// the same fault.ErrCrash, modeling a dead device.
	crashed bool
}

// SetTracer installs a structured-event sink: every appended record
// also emits a wal-append event. Pass nil to disable.
func (l *WAL) SetTracer(tr *trace.Tracer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tr = tr
}

// SetInjector arms the log's fault points (wal.torn, wal.corrupt,
// wal.short, wal.crash). Pass nil to disarm.
func (l *WAL) SetInjector(in *fault.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inj = in
}

// NewWAL returns a log writing to w. Callers owning files should pass
// a buffered or direct handle and arrange syncing themselves; the
// simulator's crash model is process-level, not media-level.
func NewWAL(w io.Writer) *WAL { return &WAL{w: w} }

// OpenWALFile creates (or truncates) a log file.
func OpenWALFile(path string) (*WAL, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return NewWAL(f), f, nil
}

// Append writes one record. With an injector armed, the append may
// deterministically crash the log (wal.crash stops at a record
// boundary, wal.torn leaves a partial frame behind — both latch
// fault.ErrCrash for every later append) or silently damage the
// record (wal.corrupt flips a payload bit, wal.short drops the
// payload) while the log keeps running.
func (l *WAL) Append(rec WALRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return fault.ErrCrash
	}
	payload := encodeWALRecord(rec, l.buf[:0])
	l.buf = payload // reuse the arena next time
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walTable))
	if l.inj.Fire(fault.WALCrash) {
		l.crashed = true
		return fault.ErrCrash
	}
	if fired, cut := l.inj.FireCut(fault.WALTorn, len(frame)+len(payload)-1); fired {
		// Write a strict prefix of the record, then die: the torn tail
		// recovery must cleanly ignore.
		torn := append(append([]byte(nil), frame[:]...), payload...)[:cut+1]
		l.w.Write(torn) //nolint:errcheck // already crashing
		l.crashed = true
		return fault.ErrCrash
	}
	if fired, cut := l.inj.FireCut(fault.WALCorrupt, len(payload)*8); fired {
		// Flip one payload bit after the checksum was computed: a lying
		// disk the reader must catch.
		payload[cut/8] ^= 1 << (cut % 8)
	}
	short := l.inj.Fire(fault.WALShort)
	if _, err := l.w.Write(frame[:]); err != nil {
		return err
	}
	if !short {
		if _, err := l.w.Write(payload); err != nil {
			return err
		}
	}
	l.appended++
	if l.tr.Wants(trace.KindWALAppend) {
		l.tr.Emit(trace.Event{
			Kind: trace.KindWALAppend, Instance: rec.Instance,
			Object: rec.Object, Op: rec.Kind.String(), Value: int64(rec.Value),
		})
	}
	return nil
}

// Appended returns the number of records written.
func (l *WAL) Appended() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

func encodeWALRecord(rec WALRecord, buf []byte) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = binary.AppendVarint(buf, rec.Instance)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Object)))
	buf = append(buf, rec.Object...)
	buf = binary.AppendVarint(buf, int64(rec.Value))
	return buf
}

func decodeWALRecord(payload []byte) (WALRecord, error) {
	var rec WALRecord
	if len(payload) < 1 {
		return rec, ErrCorrupt
	}
	rec.Kind = WALRecordKind(payload[0])
	if rec.Kind < WALBegin || rec.Kind > WALAbort {
		return rec, ErrCorrupt
	}
	rest := payload[1:]
	inst, n := binary.Varint(rest)
	if n <= 0 {
		return rec, ErrCorrupt
	}
	rec.Instance = inst
	rest = rest[n:]
	olen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < olen {
		return rec, ErrCorrupt
	}
	rest = rest[n:]
	rec.Object = string(rest[:olen])
	rest = rest[olen:]
	val, n := binary.Varint(rest)
	if n <= 0 || n != len(rest) {
		return rec, ErrCorrupt
	}
	rec.Value = Value(val)
	return rec, nil
}

// TailState classifies how a WAL scan ended.
type TailState int

const (
	// TailClean: EOF exactly at a record boundary — the log is whole.
	TailClean TailState = iota
	// TailTorn: the log ends inside a record (partial frame header or
	// payload) — the expected shape of a crash mid-append.
	TailTorn
	// TailCorrupt: a complete record failed its checksum, carried an
	// implausible length, or would not decode — damage rather than a
	// clean tear.
	TailCorrupt
)

// String names the tail state.
func (t TailState) String() string {
	switch t {
	case TailClean:
		return "clean"
	case TailTorn:
		return "torn"
	case TailCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("TailState(%d)", int(t))
	}
}

// ScanReport describes where and how a WAL scan stopped.
type ScanReport struct {
	// Records is the number of valid records in the prefix.
	Records int
	// Tail classifies the stop; Offset is the byte offset of the first
	// bad record's frame (== total valid-prefix length), and Detail
	// explains what was found there.
	Tail   TailState
	Offset int64
	Detail string
}

// ScanWAL decodes records until EOF or the first damaged record,
// returning the valid prefix plus a report classifying the tail. Torn
// and corrupt tails are not errors — they are what crash recovery
// exists for — so err is only a real read failure.
func ScanWAL(r io.Reader) ([]WALRecord, ScanReport, error) {
	br := bufio.NewReader(r)
	var out []WALRecord
	var rep ScanReport
	var off int64
	for {
		rep.Offset = off
		var frame [8]byte
		n, err := io.ReadFull(br, frame[:])
		if err != nil {
			if errors.Is(err, io.EOF) && n == 0 {
				rep.Tail = TailClean
				return out, rep, nil
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				rep.Tail = TailTorn
				rep.Detail = fmt.Sprintf("partial frame header (%d of 8 bytes)", n)
				return out, rep, nil
			}
			return out, rep, err
		}
		size := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if size > 1<<20 {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("implausible record length %d", size)
			return out, rep, nil
		}
		payload := make([]byte, size)
		if n, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				rep.Tail = TailTorn
				rep.Detail = fmt.Sprintf("partial payload (%d of %d bytes)", n, size)
				return out, rep, nil
			}
			return out, rep, err
		}
		if crc32.Checksum(payload, walTable) != sum {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("checksum mismatch on record %d", rep.Records)
			return out, rep, nil
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			rep.Tail = TailCorrupt
			rep.Detail = fmt.Sprintf("checksum-valid record %d does not decode", rep.Records)
			return out, rep, nil
		}
		out = append(out, rec)
		rep.Records++
		off += 8 + int64(size)
	}
}

// ReadWAL decodes records until EOF or the first corrupt/torn record,
// returning the valid prefix. A torn tail is not an error: it is the
// expected shape of a crash. Use ScanWAL to learn how the log ended.
func ReadWAL(r io.Reader) ([]WALRecord, error) {
	recs, _, err := ScanWAL(r)
	return recs, err
}

// Recover rebuilds a store from a log: writes of an instance are
// buffered from its begin record and applied in log order at its
// commit record; aborted or unfinished instances leave no trace. The
// initial snapshot supplies pre-log object values.
func Recover(r io.Reader, initial map[string]Value) (*Store, *RecoveryReport, error) {
	records, scan, err := ScanWAL(r)
	if err != nil {
		return nil, nil, err
	}
	st := NewStore()
	st.Load(initial)
	report := &RecoveryReport{Tail: scan}
	type pendingWrite struct {
		object string
		value  Value
	}
	pending := make(map[int64][]pendingWrite)
	for _, rec := range records {
		report.Records++
		switch rec.Kind {
		case WALBegin:
			pending[rec.Instance] = nil
		case WALWrite:
			if _, ok := pending[rec.Instance]; !ok {
				report.Orphans++
				continue
			}
			pending[rec.Instance] = append(pending[rec.Instance], pendingWrite{rec.Object, rec.Value})
		case WALCommit:
			for _, w := range pending[rec.Instance] {
				st.Write(w.object, w.value)
			}
			delete(pending, rec.Instance)
			report.Committed++
		case WALAbort:
			delete(pending, rec.Instance)
			report.Aborted++
		}
	}
	report.Unfinished = len(pending)
	return st, report, nil
}

// RecoveryReport summarizes a recovery pass.
type RecoveryReport struct {
	Records    int
	Committed  int
	Aborted    int
	Unfinished int
	// Orphans counts write records whose instance never began (only
	// possible with a mangled log).
	Orphans int
	// Tail carries the scan's tail classification: how (and where) the
	// log ended.
	Tail ScanReport
}

// String renders the report.
func (r *RecoveryReport) String() string {
	s := fmt.Sprintf("recovered %d records: %d committed, %d aborted, %d unfinished, %d orphans",
		r.Records, r.Committed, r.Aborted, r.Unfinished, r.Orphans)
	if r.Tail.Tail != TailClean {
		s += fmt.Sprintf(" (%s tail at offset %d: %s)", r.Tail.Tail, r.Tail.Offset, r.Tail.Detail)
	}
	return s
}
