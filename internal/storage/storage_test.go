package storage

import (
	"strings"
	"sync"
	"testing"
)

func TestStoreReadWrite(t *testing.T) {
	st := NewStore()
	st.Ensure("x", 5)
	if got := st.Read("x"); got.Value != 5 || got.Version != 0 {
		t.Fatalf("Read = %+v", got)
	}
	prev := st.Write("x", 9)
	if prev.Value != 5 {
		t.Errorf("Write returned prev %+v", prev)
	}
	if got := st.Read("x"); got.Value != 9 || got.Version != 1 {
		t.Fatalf("after write Read = %+v", got)
	}
	// Ensure on existing object is a no-op.
	st.Ensure("x", 42)
	if got := st.Read("x"); got.Value != 9 {
		t.Error("Ensure overwrote existing object")
	}
}

func TestStoreImplicitObjects(t *testing.T) {
	st := NewStore()
	if got := st.Read("ghost"); got.Value != 0 {
		t.Errorf("missing object read %+v, want zero value", got)
	}
	names := st.Objects()
	if len(names) != 1 || names[0] != "ghost" {
		t.Errorf("Objects = %v", names)
	}
}

func TestStoreLoadSnapshot(t *testing.T) {
	st := NewStore()
	st.Load(map[string]Value{"a": 1, "b": 2})
	snap := st.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 || len(snap) != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	// Snapshot is a copy.
	snap["a"] = 99
	if st.Read("a").Value != 1 {
		t.Error("Snapshot aliases store state")
	}
}

func TestUndoLogRollback(t *testing.T) {
	st := NewStore()
	st.Load(map[string]Value{"x": 1, "y": 2})
	var log UndoLog
	log.WriteLogged(st, "x", 10)
	log.WriteLogged(st, "y", 20)
	log.WriteLogged(st, "x", 30) // second write to x
	if log.Len() != 3 {
		t.Fatalf("Len = %d", log.Len())
	}
	log.Rollback(st)
	if st.Read("x").Value != 1 || st.Read("y").Value != 2 {
		t.Errorf("rollback failed: %s", st)
	}
	if log.Len() != 0 {
		t.Error("rollback should clear the log")
	}
	// Versions move forward even on undo.
	if st.Read("x").Version == 0 {
		t.Error("undo must not rewind versions")
	}
}

func TestUndoLogDiscard(t *testing.T) {
	st := NewStore()
	var log UndoLog
	log.WriteLogged(st, "x", 7)
	log.Discard()
	log.Rollback(st) // no-op
	if st.Read("x").Value != 7 {
		t.Error("Discard should keep effects")
	}
}

func TestRollbackSetInterleavedWrites(t *testing.T) {
	// A writes x, B overwrites x, both abort: the final value must be
	// the original, regardless of per-log order.
	st := NewStore()
	st.Load(map[string]Value{"x": 1})
	var logA, logB UndoLog
	logA.WriteLogged(st, "x", 10) // x: 1 -> 10
	logB.WriteLogged(st, "x", 20) // x: 10 -> 20
	logA.WriteLogged(st, "x", 30) // x: 20 -> 30 (A again)
	RollbackSet(st, []*UndoLog{&logA, &logB})
	if got := st.Read("x").Value; got != 1 {
		t.Errorf("x = %d after set rollback, want 1", got)
	}
}

func TestRollbackSetOrderIndependence(t *testing.T) {
	st := NewStore()
	st.Load(map[string]Value{"x": 5, "y": 7})
	var logA, logB UndoLog
	logB.WriteLogged(st, "y", 70)
	logA.WriteLogged(st, "x", 50)
	logB.WriteLogged(st, "x", 51)
	// Pass logs in "wrong" order; sequence numbers fix it.
	RollbackSet(st, []*UndoLog{&logB, &logA})
	if st.Read("x").Value != 5 || st.Read("y").Value != 7 {
		t.Errorf("rollback set wrong: %s", st)
	}
}

func TestStoreStats(t *testing.T) {
	st := NewStore()
	st.Read("a")
	st.Write("a", 1)
	st.Write("b", 2)
	r, w := st.Stats()
	if r != 1 || w != 2 {
		t.Errorf("Stats = (%d, %d)", r, w)
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory()
	h.Append(Commit{Instance: 1, Writes: map[string]Value{"x": 1}})
	h.Append(Commit{Instance: 2})
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	commits := h.Commits()
	if commits[0].Instance != 1 || commits[1].Instance != 2 {
		t.Errorf("Commits = %v", commits)
	}
}

func TestStoreString(t *testing.T) {
	st := NewStore()
	st.Load(map[string]Value{"b": 2, "a": 1})
	if got := st.String(); !strings.Contains(got, "a=1") || !strings.Contains(got, "b=2") {
		t.Errorf("String = %q", got)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	// The store latch must keep individual operations atomic under the
	// race detector.
	st := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Write("shared", Value(g*1000+i))
				st.Read("shared")
			}
		}(g)
	}
	wg.Wait()
	_, w := st.Stats()
	if w != 8*200 {
		t.Errorf("writes = %d, want %d", w, 8*200)
	}
}
