package storage

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// ShardRecovery is one lane's share of a segmented recovery pass.
type ShardRecovery struct {
	Shard    int
	Segments int
	Records  int
	// Committed counts this lane's commit records inside the cut;
	// BeyondCut counts commits discarded by the cross-shard cut.
	Committed  int
	Aborted    int
	Unfinished int
	Orphans    int
	BeyondCut  int
	// Damaged reports a non-clean tail; Tail and TailSegment say where
	// (TailSegment is the damaged segment's position in scan order).
	Damaged     bool
	Tail        ScanReport
	TailSegment int
	// DroppedSegments counts segments after the damaged one, ignored
	// wholesale (their records are beyond the lane's valid prefix).
	DroppedSegments int
	// Horizon is the GSN of the lane's last valid record (or the last
	// segment's BaseGSN when empty): the lane vouches for nothing
	// beyond it.
	Horizon uint64
}

// SegmentedReport summarizes a parallel segmented recovery.
type SegmentedReport struct {
	// Shards holds one entry per lane, ordered by shard index.
	Shards []ShardRecovery
	// CutApplied reports that at least one lane was damaged and the
	// cross-shard cut discarded commits with GSN > Cut; CutShard is the
	// lane that set the cut (lowest shard index on ties).
	CutApplied bool
	Cut        uint64
	CutShard   int
	// SnapshotGSN is the compaction snapshot's cover point (0 if none);
	// InSnapshot counts commit records skipped because the snapshot
	// already holds their effects.
	SnapshotGSN uint64
	InSnapshot  int
	// Unpublished counts segment files ignored because a crash hit
	// between rotation and publish.
	Unpublished int

	Records    int
	Committed  int
	Aborted    int
	Unfinished int
	Orphans    int
	BeyondCut  int
}

// Clean reports whether every lane scanned to a clean tail.
func (r *SegmentedReport) Clean() bool {
	for _, sh := range r.Shards {
		if sh.Damaged {
			return false
		}
	}
	return true
}

// FirstDamaged returns the damaged lane with the lowest shard index —
// the deterministic answer tools report regardless of which recovery
// goroutine finished first — and false if the log is clean.
func (r *SegmentedReport) FirstDamaged() (ShardRecovery, bool) {
	for _, sh := range r.Shards {
		if sh.Damaged {
			return sh, true
		}
	}
	return ShardRecovery{}, false
}

// FirstDamagedKind returns the lowest-indexed lane whose tail matches
// kind, and false if none does.
func (r *SegmentedReport) FirstDamagedKind(kind TailState) (ShardRecovery, bool) {
	for _, sh := range r.Shards {
		if sh.Damaged && sh.Tail.Tail == kind {
			return sh, true
		}
	}
	return ShardRecovery{}, false
}

// String renders the report.
func (r *SegmentedReport) String() string {
	s := fmt.Sprintf("recovered %d lanes, %d records: %d committed, %d aborted, %d unfinished, %d orphans",
		len(r.Shards), r.Records, r.Committed, r.Aborted, r.Unfinished, r.Orphans)
	if r.SnapshotGSN > 0 {
		s += fmt.Sprintf(", %d in snapshot@%d", r.InSnapshot, r.SnapshotGSN)
	}
	if r.CutApplied {
		s += fmt.Sprintf(" (cut@%d by shard %d: %d commits discarded)", r.Cut, r.CutShard, r.BeyondCut)
	}
	return s
}

// shardScan is one lane's scan output before reconciliation.
type shardScan struct {
	rec     ShardRecovery
	commits []laneCommit
}

// laneCommit is one committed transaction found in a lane: its commit
// GSN plus buffered writes in log order.
type laneCommit struct {
	gsn    uint64
	writes []pendingWrite
}

type pendingWrite struct {
	object string
	value  Value
}

// RecoverSegmented rebuilds a store from a segmented log: every lane
// is scanned concurrently (the parallel half), then a cross-shard cut
// reconciles damage and committed writes are applied in global commit
// order (GSN). The cut argument: a lane's log vouches for nothing past
// its horizon, and since every dependency a transaction commits under
// points at lower GSNs, discarding all commits with GSN above the
// minimum damaged horizon yields a consistent prefix of the committed
// history — so recovery from ANY per-lane prefix is invariant-clean.
// Commits covered by the compaction snapshot are skipped; the snapshot
// supplies their effects.
func RecoverSegmented(set *SegmentSet, initial map[string]Value) (*Store, *SegmentedReport, error) {
	if set == nil {
		set = &SegmentSet{}
	}
	shardIdxs := make([]int, 0, len(set.Shards))
	for s := range set.Shards {
		shardIdxs = append(shardIdxs, s)
	}
	sort.Ints(shardIdxs)
	scans := make([]shardScan, len(shardIdxs))
	var wg sync.WaitGroup
	for i, s := range shardIdxs {
		wg.Add(1)
		go func(i, s int) {
			defer wg.Done()
			scans[i] = scanShardLog(s, set.Shards[s], set.SnapshotGSN)
		}(i, s)
	}
	wg.Wait()

	report := &SegmentedReport{SnapshotGSN: set.SnapshotGSN, Unpublished: set.Unpublished, CutShard: -1}

	// Cross-shard cut: the minimum horizon over damaged lanes bounds
	// which commits (from ANY lane) survive.
	for _, sc := range scans {
		if sc.rec.Damaged && (!report.CutApplied || sc.rec.Horizon < report.Cut) {
			report.CutApplied = true
			report.Cut = sc.rec.Horizon
			report.CutShard = sc.rec.Shard
		}
	}

	st := NewStore()
	st.Load(initial)
	st.Load(set.Snapshot)
	var surviving []laneCommit
	for i := range scans {
		sc := &scans[i]
		kept := sc.commits[:0]
		for _, c := range sc.commits {
			switch {
			case set.Snapshot != nil && c.gsn <= set.SnapshotGSN:
				report.InSnapshot++
			case report.CutApplied && c.gsn > report.Cut:
				sc.rec.BeyondCut++
			default:
				sc.rec.Committed++
				kept = append(kept, c)
			}
		}
		surviving = append(surviving, kept...)
		report.Shards = append(report.Shards, sc.rec)
		report.Records += sc.rec.Records
		report.Committed += sc.rec.Committed
		report.Aborted += sc.rec.Aborted
		report.Unfinished += sc.rec.Unfinished
		report.Orphans += sc.rec.Orphans
		report.BeyondCut += sc.rec.BeyondCut
	}
	sort.Slice(surviving, func(i, j int) bool { return surviving[i].gsn < surviving[j].gsn })
	for _, c := range surviving {
		for _, w := range c.writes {
			st.Write(w.object, w.value)
		}
	}
	return st, report, nil
}

// scanShardLog replays one lane's segments in order, stopping at the
// first damaged tail or cross-segment inconsistency (wrong shard,
// non-increasing index, BaseGSN below the records already seen — all
// classified corrupt). Transaction accounting matches the single-lane
// Recover: writes buffer from begin, apply at commit; instance routing
// guarantees a transaction's records never span lanes.
func scanShardLog(shardIdx int, segs [][]byte, snapGSN uint64) shardScan {
	sc := shardScan{rec: ShardRecovery{Shard: shardIdx, Horizon: snapGSN}}
	pending := make(map[int64][]pendingWrite)
	damage := func(segNo int, tail ScanReport) {
		sc.rec.Damaged = true
		sc.rec.TailSegment = segNo
		sc.rec.Tail = tail
		sc.rec.DroppedSegments = len(segs) - segNo - 1
	}
	lastIndex := -1
	for segNo, seg := range segs {
		if len(seg) < SegmentHeaderSize {
			damage(segNo, ScanReport{Tail: TailTorn, Detail: fmt.Sprintf("partial segment header (%d of %d bytes)", len(seg), SegmentHeaderSize)})
			break
		}
		hdr, err := DecodeSegmentHeader(seg[:SegmentHeaderSize])
		if err != nil {
			damage(segNo, ScanReport{Tail: TailCorrupt, Detail: "segment header magic or checksum mismatch"})
			break
		}
		// Cross-segment consistency: the chain must belong to this
		// lane, with strictly increasing indices and a BaseGSN no lower
		// than what earlier segments already vouched for.
		switch {
		case hdr.Shard != shardIdx:
			damage(segNo, ScanReport{Tail: TailCorrupt, Detail: fmt.Sprintf("segment claims shard %d, found in shard %d", hdr.Shard, shardIdx)})
		case segNo > 0 && hdr.Index <= lastIndex:
			damage(segNo, ScanReport{Tail: TailCorrupt, Detail: fmt.Sprintf("segment index %d not increasing (previous %d)", hdr.Index, lastIndex)})
		case hdr.BaseGSN < sc.rec.Horizon:
			damage(segNo, ScanReport{Tail: TailCorrupt, Detail: fmt.Sprintf("segment BaseGSN %d below horizon %d", hdr.BaseGSN, sc.rec.Horizon)})
		}
		if sc.rec.Damaged {
			break
		}
		lastIndex = hdr.Index
		if hdr.BaseGSN > sc.rec.Horizon {
			// Rotation syncs the sealed segment before opening this one,
			// so the lane vouches through BaseGSN even if this segment's
			// own frames were lost.
			sc.rec.Horizon = hdr.BaseGSN
		}
		_, recs, tail, scanErr := ScanSegment(bytes.NewReader(seg))
		if scanErr != nil {
			// bytes.Reader cannot fail mid-read; treat defensively.
			damage(segNo, ScanReport{Tail: TailCorrupt, Detail: scanErr.Error()})
			break
		}
		sc.rec.Segments++
		for _, sr := range recs {
			sc.rec.Records++
			sc.rec.Horizon = sr.GSN
			rec := sr.Rec
			switch rec.Kind {
			case WALBegin:
				pending[rec.Instance] = nil
			case WALWrite:
				if _, ok := pending[rec.Instance]; !ok {
					sc.rec.Orphans++
					continue
				}
				pending[rec.Instance] = append(pending[rec.Instance], pendingWrite{rec.Object, rec.Value})
			case WALCommit:
				sc.commits = append(sc.commits, laneCommit{gsn: sr.GSN, writes: pending[rec.Instance]})
				delete(pending, rec.Instance)
			case WALAbort:
				delete(pending, rec.Instance)
				sc.rec.Aborted++
			}
		}
		if tail.Tail != TailClean {
			damage(segNo, tail)
			break
		}
	}
	sc.rec.Unfinished = len(pending)
	return sc
}
