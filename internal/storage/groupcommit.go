package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/shard"
	"relser/internal/trace"
)

// WALSink is the durability interface the engine logs through: the
// single-lane WAL satisfies it trivially (write-through, no batching),
// the ShardedWAL implements real group commit behind it.
type WALSink interface {
	// Append enqueues one record without waiting for durability.
	Append(rec WALRecord) error
	// AppendSync returns once the record is durable — the commit
	// stage's group-commit wait.
	AppendSync(rec WALRecord) error
	// Sync blocks until everything appended before the call is durable
	// (or failed) and returns the first latched error.
	Sync() error
	// Err returns the latched crash/IO error without waiting.
	Err() error
	SetTracer(tr *trace.Tracer)
	SetInjector(in *fault.Injector)
}

var errWALClosed = errors.New("storage: append on closed WAL")

// SegmentedOptions tunes a per-shard segmented WAL.
type SegmentedOptions struct {
	// Shards is the number of durability lanes (normalized to a power
	// of two in [1, shard.MaxShards], like every other shard count).
	Shards int
	// SegmentBytes rotates a lane's segment once its logical size
	// (header + frames) would exceed it. Default 1 MiB.
	SegmentBytes int64
	// QueueDepth bounds each lane's pending-append queue; producers
	// block when the committer falls this far behind. Default 1024.
	QueueDepth int
}

func (o SegmentedOptions) withDefaults() SegmentedOptions {
	o.Shards = shard.Normalize(o.Shards)
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// walFrame is one enqueued unit of work for a lane's committer. Fault
// decisions are made at enqueue time — under the lane mutex, in append
// order — so the injector's deterministic schedule is independent of
// committer timing; the committer only executes the instructions.
type walFrame struct {
	bytes   []byte
	done    chan error // non-nil for AppendSync waiters
	records int        // 0 for rotation barriers

	rotate      bool   // open a new segment before writing this frame
	rotateBase  uint64 // BaseGSN for the new segment
	rotateCrash bool   // wal.rotate.crash: die between create and publish
	crash       bool   // wal.crash: die at the frame boundary
	tornCut     int    // wal.torn: write bytes[:tornCut+1], then die (-1 off)
	partialCut  int    // wal.group.partial: write bytes[:partialCut], then die (-1 off)
}

// walShard is one durability lane: a bounded queue of encoded frames
// drained by a committer goroutine into the lane's current segment
// with one fsync per drained batch.
//
// mu is a leaf lock: nothing else is acquired under it, and all I/O
// happens outside it. cur/curIdx are committer-owned (no lock); queue,
// sequence counters, the error latch and the logical-size rotation
// accounting live under mu.
type walShard struct {
	idx int

	mu       sync.Mutex
	notEmpty sync.Cond // committer waits: frames queued or closing
	notFull  sync.Cond // producers wait: queue below depth
	synced   sync.Cond // Sync waiters: doneSeq caught up
	queue    []walFrame
	enqSeq   uint64 // frames ever enqueued
	doneSeq  uint64 // frames fully processed by the committer
	err      error  // sticky: injected crash or real I/O failure
	closed   bool
	open     map[int64]bool // txns begun but not yet committed/aborted here
	logBytes int64          // logical size of the current segment
	sealed   []int          // indices sealed by rotation since last checkpoint

	cur    SegmentFile
	curIdx int

	batchHist *metrics.Histogram // records per group commit
	fsyncHist *metrics.Histogram // seconds per fsync
}

// ShardedWAL is a per-shard segmented write-ahead log with group
// commit, snapshot compaction and parallel recovery (DESIGN.md §5.4).
// Records are routed to lanes by transaction instance, so one
// transaction's records always share a lane and per-lane recovery is
// the legacy single-log algorithm; a global sequence number (GSN)
// drawn at enqueue orders commits across lanes for replay.
type ShardedWAL struct {
	backend SegmentBackend
	opt     SegmentedOptions
	router  shard.Router
	gsn     atomic.Uint64
	lanes   []*walShard
	tr      atomic.Pointer[trace.Tracer]
	inj     atomic.Pointer[fault.Injector]
	wg      sync.WaitGroup
	closed  atomic.Bool

	appends      atomic.Int64
	fsyncs       atomic.Int64
	rotations    atomic.Int64
	groupCommits atomic.Int64
	compactions  atomic.Int64

	mAppends   *metrics.Counter
	mFsyncs    *metrics.Counter
	mRotations *metrics.Counter
	mGroups    *metrics.Counter
}

// NewShardedWAL opens a segmented log over the backend: segment 0 of
// every lane is created, header-written, synced and published before
// any append, so even an empty run recovers cleanly.
func NewShardedWAL(backend SegmentBackend, opt SegmentedOptions) (*ShardedWAL, error) {
	if backend == nil {
		return nil, errors.New("storage: nil segment backend")
	}
	opt = opt.withDefaults()
	w := &ShardedWAL{backend: backend, opt: opt, router: shard.NewRouter(opt.Shards)}
	for i := 0; i < opt.Shards; i++ {
		sh := &walShard{idx: i, open: map[int64]bool{}, logBytes: SegmentHeaderSize}
		sh.notEmpty.L = &sh.mu
		sh.notFull.L = &sh.mu
		sh.synced.L = &sh.mu
		f, err := openSegment(backend, i, 0, 0)
		if err != nil {
			return nil, err
		}
		sh.cur = f
		w.lanes = append(w.lanes, sh)
	}
	for _, sh := range w.lanes {
		w.wg.Add(1)
		go w.committer(sh)
	}
	return w, nil
}

// OpenShardedWAL is NewShardedWAL over a DirBackend rooted at dir,
// wiping any previous log there first (the way OpenWALFile truncates).
func OpenShardedWAL(dir string, opt SegmentedOptions) (*ShardedWAL, error) {
	b := NewDirBackend(dir)
	if err := b.Reset(); err != nil {
		return nil, err
	}
	return NewShardedWAL(b, opt)
}

// openSegment creates, header-writes, syncs and publishes a segment.
func openSegment(b SegmentBackend, shardIdx, index int, baseGSN uint64) (SegmentFile, error) {
	f, err := b.Create(shardIdx, index)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeSegmentHeader(SegmentHeader{Shard: shardIdx, Index: index, BaseGSN: baseGSN})); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := b.Publish(shardIdx, index); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// SetTracer installs a structured-event sink on every lane.
func (w *ShardedWAL) SetTracer(tr *trace.Tracer) { w.tr.Store(tr) }

// SetInjector arms the log's fault points (wal.crash, wal.torn,
// wal.corrupt, wal.rotate.crash, wal.group.partial). Faults are
// consulted at enqueue time in append order, so the deterministic
// driver's fault schedule does not depend on committer timing.
func (w *ShardedWAL) SetInjector(in *fault.Injector) { w.inj.Store(in) }

// SetMetrics wires the log's counters and per-lane histograms
// (wal.shardNN.fsync_seconds, wal.shardNN.batch_records) into the
// registry. Call before appending.
func (w *ShardedWAL) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	w.mAppends = reg.Counter("wal.appends")
	w.mFsyncs = reg.Counter("wal.fsyncs")
	w.mRotations = reg.Counter("wal.rotations")
	w.mGroups = reg.Counter("wal.group_commits")
	for _, sh := range w.lanes {
		sh.batchHist = reg.Histogram(fmt.Sprintf("wal.shard%02d.batch_records", sh.idx))
		sh.fsyncHist = reg.Histogram(fmt.Sprintf("wal.shard%02d.fsync_seconds", sh.idx))
	}
}

// Shards returns the number of durability lanes.
func (w *ShardedWAL) Shards() int { return w.opt.Shards }

// GSN returns the last allocated global sequence number.
func (w *ShardedWAL) GSN() uint64 { return w.gsn.Load() }

// Append enqueues one record on its instance's lane and returns
// without waiting for durability; a latched lane error fails fast.
func (w *ShardedWAL) Append(rec WALRecord) error {
	_, err := w.enqueue(rec, false)
	return err
}

// AppendSync enqueues one record and parks until the lane's committer
// has flushed and fsynced the batch containing it — the group-commit
// wait the engine's commit stage sits on.
func (w *ShardedWAL) AppendSync(rec WALRecord) error {
	done, err := w.enqueue(rec, true)
	if done != nil {
		derr := <-done
		if err == nil {
			err = derr
		}
	}
	return err
}

// enqueue assigns the record a GSN, decides rotation and injected
// faults under the lane mutex (append order == fault-schedule order),
// and hands the encoded frame to the committer.
func (w *ShardedWAL) enqueue(rec WALRecord, wait bool) (chan error, error) {
	sh := w.lanes[w.router.ShardID(rec.Instance)]
	sh.mu.Lock()
	for len(sh.queue) >= w.opt.QueueDepth && sh.err == nil && !sh.closed {
		sh.notFull.Wait()
	}
	if sh.err != nil {
		err := sh.err
		sh.mu.Unlock()
		return nil, err
	}
	if sh.closed {
		sh.mu.Unlock()
		return nil, errWALClosed
	}
	gsn := w.gsn.Add(1)
	fr := walFrame{records: 1, tornCut: -1, partialCut: -1}
	fr.bytes = appendSegFrame(nil, gsn, rec)
	if sh.logBytes+int64(len(fr.bytes)) > w.opt.SegmentBytes && sh.logBytes > SegmentHeaderSize {
		// This frame opens a new segment. BaseGSN is gsn-1: every
		// record landing there (this one first) has a larger GSN.
		fr.rotate = true
		fr.rotateBase = gsn - 1
		sh.logBytes = SegmentHeaderSize
	}
	sh.logBytes += int64(len(fr.bytes))
	crash := decideFaults(w.inj.Load(), sh, &fr)
	if crash {
		sh.err = fault.ErrCrash
	}
	switch rec.Kind {
	case WALBegin:
		sh.open[rec.Instance] = true
	case WALCommit, WALAbort:
		delete(sh.open, rec.Instance)
	}
	if wait {
		fr.done = make(chan error, 1)
	}
	sh.queue = append(sh.queue, fr)
	sh.enqSeq++
	if fr.rotate {
		w.rotations.Add(1)
		if w.mRotations != nil {
			w.mRotations.Inc()
		}
		if tr := w.tr.Load(); tr.Wants(trace.KindWALRotate) {
			tr.Emit(trace.Event{Kind: trace.KindWALRotate, Instance: rec.Instance, Value: int64(gsn)})
		}
	}
	w.appends.Add(1)
	if w.mAppends != nil {
		w.mAppends.Inc()
	}
	if tr := w.tr.Load(); tr.Wants(trace.KindWALAppend) {
		tr.Emit(trace.Event{
			Kind: trace.KindWALAppend, Instance: rec.Instance,
			Object: rec.Object, Op: rec.Kind.String(), Value: int64(rec.Value),
		})
	}
	sh.notEmpty.Signal()
	sh.mu.Unlock()
	if crash {
		return fr.done, fault.ErrCrash
	}
	return fr.done, nil
}

// decideFaults consults the armed fault points for one frame, in a
// fixed order, attaching the firing instructions to the frame for the
// committer to execute. Returns whether the lane must latch a crash.
//
// Called with sh.mu held — deliberately: determinism requires the
// injector's call-index order to equal the append order, and the lane
// mutex is a leaf (no I/O, no other locks beneath it), so the consult
// cannot deadlock or stall foreign lanes.
//
//rsvet:locks sh.mu
func decideFaults(in *fault.Injector, sh *walShard, fr *walFrame) bool {
	_ = sh // documents the contract; the lane's queue order is the fault order
	crash := false
	//rsvet:allow stripelock -- deterministic fault decision must happen in append order under the lane mutex
	if in.Fire(fault.WALCrash) {
		fr.crash = true
		crash = true
	}
	if fr.rotate && !crash {
		//rsvet:allow stripelock -- deterministic fault decision must happen in append order under the lane mutex
		if in.Fire(fault.WALRotateCrash) {
			fr.rotateCrash = true
			crash = true
		}
	}
	if !crash {
		//rsvet:allow stripelock -- deterministic fault decision must happen in append order under the lane mutex
		if fired, cut := in.FireCut(fault.WALTorn, len(fr.bytes)-1); fired {
			fr.tornCut = cut
			crash = true
		}
	}
	if !crash {
		//rsvet:allow stripelock -- deterministic fault decision must happen in append order under the lane mutex
		if fired, cut := in.FireCut(fault.WALGroupPartial, len(fr.bytes)); fired {
			fr.partialCut = cut
			crash = true
		}
	}
	//rsvet:allow stripelock -- deterministic fault decision must happen in append order under the lane mutex
	if fired, cut := in.FireCut(fault.WALCorrupt, (len(fr.bytes)-segFrameHeaderSize)*8); fired {
		// Flip one payload bit after the checksum was sealed: a lying
		// disk the segment scan must catch.
		fr.bytes[segFrameHeaderSize+cut/8] ^= 1 << (cut % 8)
	}
	return crash
}

// committer drains one lane: swap the queue out under the mutex, do
// all I/O outside it, then advance doneSeq and wake Sync waiters.
func (w *ShardedWAL) committer(sh *walShard) {
	defer w.wg.Done()
	for {
		sh.mu.Lock()
		for len(sh.queue) == 0 && !sh.closed {
			sh.notEmpty.Wait()
		}
		if len(sh.queue) == 0 && sh.closed {
			sh.mu.Unlock()
			return
		}
		batch := sh.queue
		sh.queue = nil
		sh.notFull.Broadcast()
		sh.mu.Unlock()

		sealed, ioErr := w.flushBatch(sh, batch)

		sh.mu.Lock()
		sh.doneSeq += uint64(len(batch))
		if ioErr != nil && sh.err == nil {
			sh.err = ioErr
		}
		sh.sealed = append(sh.sealed, sealed...)
		sh.synced.Broadcast()
		sh.mu.Unlock()
	}
}

// flushBatch writes a drained batch into the lane's segment chain and
// issues one fsync for the lot. Injected faults attached to frames are
// executed here: a torn or partial frame's prefix bytes still reach
// the device (that is the point), every later frame in the batch fails
// with the same crash. Returns a real I/O error to latch (injected
// crashes were latched at enqueue) plus segment indices sealed by
// rotations in this batch.
func (w *ShardedWAL) flushBatch(sh *walShard, batch []walFrame) ([]int, error) {
	var failed error   // first injected crash or I/O error in the batch
	var ioErr error    // real I/O failure to latch
	var sealed []int   // segment indices sealed by rotation
	var pending []byte // frame bytes accumulated for one write
	var acked []chan error
	records := 0
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		_, err := sh.cur.Write(pending)
		pending = pending[:0]
		return err
	}
	fail := func(err error) {
		failed = err
		if !errors.Is(err, fault.ErrCrash) && ioErr == nil {
			ioErr = err
		}
	}
	for i := range batch {
		fr := &batch[i]
		if failed != nil {
			if fr.done != nil {
				fr.done <- failed
			}
			continue
		}
		if fr.rotate {
			if err := flush(); err != nil {
				fail(err)
			} else if err := w.rotate(sh, fr, &sealed); err != nil {
				fail(err)
			}
			if failed != nil {
				if fr.done != nil {
					fr.done <- failed
				}
				continue
			}
		}
		switch {
		case fr.crash:
			fail(fault.ErrCrash)
		case fr.tornCut >= 0:
			pending = append(pending, fr.bytes[:fr.tornCut+1]...)
			fail(fault.ErrCrash)
		case fr.partialCut >= 0:
			pending = append(pending, fr.bytes[:fr.partialCut]...)
			fail(fault.ErrCrash)
		default:
			pending = append(pending, fr.bytes...)
			records += fr.records
			if fr.done != nil {
				acked = append(acked, fr.done)
			}
			continue
		}
		if fr.done != nil {
			fr.done <- failed
		}
	}
	if err := flush(); err != nil {
		fail(err)
	}
	start := time.Now()
	if err := sh.cur.Sync(); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	w.fsyncs.Add(1)
	w.groupCommits.Add(1)
	if w.mFsyncs != nil {
		w.mFsyncs.Inc()
	}
	if w.mGroups != nil {
		w.mGroups.Inc()
	}
	if sh.fsyncHist != nil {
		sh.fsyncHist.Observe(elapsed.Seconds())
	}
	if sh.batchHist != nil {
		sh.batchHist.Observe(float64(records))
	}
	if tr := w.tr.Load(); tr.Wants(trace.KindWALGroupCommit) {
		tr.Emit(trace.Event{Kind: trace.KindWALGroupCommit, Instance: int64(sh.idx), Value: int64(records)})
	}
	// Frames are durable (or doomed) now: ack the clean waiters with
	// whatever the write+fsync concluded.
	for _, done := range acked {
		done <- ioErr
	}
	return sealed, ioErr
}

// rotate seals the lane's current segment and opens the next one:
// sync, close, create k+1, write+sync its header, publish, swap. An
// injected wal.rotate.crash dies after the header sync but before
// publish, leaving an unpublished segment recovery must ignore.
func (w *ShardedWAL) rotate(sh *walShard, fr *walFrame, sealed *[]int) error {
	if err := sh.cur.Sync(); err != nil {
		return err
	}
	if err := sh.cur.Close(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if w.mFsyncs != nil {
		w.mFsyncs.Inc()
	}
	next := sh.curIdx + 1
	f, err := w.backend.Create(sh.idx, next)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegmentHeader(SegmentHeader{Shard: sh.idx, Index: next, BaseGSN: fr.rotateBase})); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if fr.rotateCrash {
		f.Close()
		return fault.ErrCrash
	}
	if err := w.backend.Publish(sh.idx, next); err != nil {
		f.Close()
		return err
	}
	*sealed = append(*sealed, sh.curIdx)
	sh.cur = f
	sh.curIdx = next
	return nil
}

// Sync blocks until every record enqueued before the call is durable
// (or failed), then reports the first latched lane error.
func (w *ShardedWAL) Sync() error {
	for _, sh := range w.lanes {
		sh.mu.Lock()
		target := sh.enqSeq
		for sh.doneSeq < target {
			sh.synced.Wait()
		}
		sh.mu.Unlock()
	}
	return w.Err()
}

// Err returns the first latched lane error without waiting.
func (w *ShardedWAL) Err() error {
	for _, sh := range w.lanes {
		sh.mu.Lock()
		err := sh.err
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close drains every lane, stops the committers and closes the current
// segments. Idempotent; returns the first latched error.
func (w *ShardedWAL) Close() error {
	if w.closed.Swap(true) {
		return w.Err()
	}
	for _, sh := range w.lanes {
		sh.mu.Lock()
		sh.closed = true
		sh.notEmpty.Broadcast()
		sh.notFull.Broadcast()
		sh.mu.Unlock()
	}
	w.wg.Wait()
	for _, sh := range w.lanes {
		sh.cur.Sync()  //nolint:errcheck // final best-effort flush
		sh.cur.Close() //nolint:errcheck
	}
	return w.Err()
}

// Checkpoint compacts the log behind a snapshot. snap must reflect
// every record logged so far, which requires quiescence: with any
// transaction still open on a lane the call refuses. The protocol is
// crash-safe in order: seal the current segments (rotation barriers +
// full sync), write the snapshot durably, only then drop the sealed
// segments — a crash anywhere leaves either the old segments or a
// covering snapshot on disk.
func (w *ShardedWAL) Checkpoint(snap map[string]Value) error {
	for _, sh := range w.lanes {
		sh.mu.Lock()
		n := len(sh.open)
		sh.mu.Unlock()
		if n > 0 {
			return fmt.Errorf("storage: checkpoint with %d open transactions on lane %d", n, sh.idx)
		}
	}
	cut := w.gsn.Load()
	in := w.inj.Load()
	for _, sh := range w.lanes {
		sh.mu.Lock()
		if sh.err != nil {
			err := sh.err
			sh.mu.Unlock()
			return err
		}
		fr := walFrame{rotate: true, rotateBase: cut, tornCut: -1, partialCut: -1}
		if in.Fire(fault.WALRotateCrash) { //rsvet:allow stripelock -- deterministic fault decision must happen in append order under the lane mutex
			fr.rotateCrash = true
			sh.err = fault.ErrCrash
		}
		sh.queue = append(sh.queue, fr)
		sh.enqSeq++
		sh.logBytes = SegmentHeaderSize
		sh.notEmpty.Signal()
		sh.mu.Unlock()
	}
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.backend.WriteSnapshot(cut, EncodeSnapshot(cut, snap)); err != nil {
		return err
	}
	for _, sh := range w.lanes {
		sh.mu.Lock()
		sealed := sh.sealed
		sh.sealed = nil
		sh.mu.Unlock()
		for _, idx := range sealed {
			if err := w.backend.DropSegment(sh.idx, idx); err != nil {
				return err
			}
		}
	}
	w.compactions.Add(1)
	return nil
}

// ShardedWALStats is a point-in-time counter snapshot.
type ShardedWALStats struct {
	Appends      int64
	Fsyncs       int64
	Rotations    int64
	GroupCommits int64
	Compactions  int64
}

// Stats snapshots the log's counters.
func (w *ShardedWAL) Stats() ShardedWALStats {
	return ShardedWALStats{
		Appends:      w.appends.Load(),
		Fsyncs:       w.fsyncs.Load(),
		Rotations:    w.rotations.Load(),
		GroupCommits: w.groupCommits.Load(),
		Compactions:  w.compactions.Load(),
	}
}

// Single-lane WAL adapters: the legacy log satisfies WALSink by
// writing through (its crash model is process-level, so Append already
// implies "as durable as the log gets").

// AppendSync appends one record; the single-lane WAL has no group
// commit to wait for.
//
//rsvet:allow walsync -- write-through adapter: the single-lane WAL's crash model is process-level, Append is already as durable as the log gets
func (l *WAL) AppendSync(rec WALRecord) error { return l.Append(rec) }

// Sync reports the latched crash, if any; the single-lane WAL writes
// through so there is nothing to flush.
//
//rsvet:allow walsync -- write-through adapter: nothing is buffered, so reporting the latched crash is the whole sync
func (l *WAL) Sync() error { return l.Err() }

// Err returns the latched crash error, if any.
func (l *WAL) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return fault.ErrCrash
	}
	return nil
}
