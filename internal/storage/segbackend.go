package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// SegmentFile is one writable segment of a shard's log.
type SegmentFile interface {
	Write(p []byte) (int, error)
	// Sync makes everything written so far durable; the group-commit
	// protocol issues exactly one Sync per drained batch.
	Sync() error
	Close() error
}

// SegmentBackend stores the segments and snapshots of a segmented WAL.
// Implementations must keep a created segment invisible to recovery
// until Publish: the rotation protocol writes and syncs the header of
// segment k+1 before publishing it, so a crash in between leaves an
// unpublished file recovery soundly ignores.
type SegmentBackend interface {
	// Create opens shard's segment index for writing, hidden.
	Create(shard, index int) (SegmentFile, error)
	// Publish makes a created segment visible under its final name.
	Publish(shard, index int) error
	// WriteSnapshot durably stores an encoded snapshot covering every
	// commit with GSN <= gsn. Must be atomic: recovery either sees the
	// whole snapshot (checksummed) or none of it.
	WriteSnapshot(gsn uint64, data []byte) error
	// DropSegment removes a sealed segment the snapshot now covers.
	DropSegment(shard, index int) error
}

// SegmentSet is a segmented log spread out for recovery: per-shard
// published segment bytes in index order, plus the newest valid
// snapshot if any. Crash sweeps build these directly from truncated
// byte slices; ReadWALDir builds one from a DirBackend directory.
type SegmentSet struct {
	Shards map[int][][]byte
	// SnapshotGSN / Snapshot carry the compaction snapshot; Snapshot is
	// nil when the log has never been checkpointed.
	SnapshotGSN uint64
	Snapshot    map[string]Value
	// Unpublished counts segment files ignored because a crash hit
	// between rotation and publish (.tmp leftovers).
	Unpublished int
	// DamagedSnapshots lists snapshot files that failed to decode and
	// were skipped (recovery falls back to an older snapshot or full
	// replay); each entry is a *SnapshotError naming the file.
	DamagedSnapshots []error
}

// Snapshot encoding:
//
//	[magic "RSNP"][version u8][pad3][gsn u64][count u32]
//	count * { [olen uvarint][object][value varint] }   (sorted by object)
//	[crc u32]  over everything before it
const (
	snapMagic   = "RSNP"
	snapVersion = 1
)

// EncodeSnapshot serializes a store snapshot covering commits with
// GSN <= gsn. The encoding is deterministic (objects sorted).
func EncodeSnapshot(gsn uint64, snap map[string]Value) []byte {
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 16+len(names)*16)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint64(buf, gsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, k := range names {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendVarint(buf, int64(snap[k]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, walTable))
	return buf
}

// DecodeSnapshot validates and decodes an encoded snapshot.
func DecodeSnapshot(b []byte) (uint64, map[string]Value, error) {
	if len(b) < 24 {
		return 0, nil, ErrCorrupt
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, walTable) != sum {
		return 0, nil, ErrCorrupt
	}
	if string(body[0:4]) != snapMagic || body[4] != snapVersion {
		return 0, nil, ErrCorrupt
	}
	gsn := binary.LittleEndian.Uint64(body[8:16])
	count := binary.LittleEndian.Uint32(body[16:20])
	rest := body[20:]
	snap := make(map[string]Value, count)
	for i := uint32(0); i < count; i++ {
		olen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < olen {
			return 0, nil, ErrCorrupt
		}
		rest = rest[n:]
		name := string(rest[:olen])
		rest = rest[olen:]
		val, n := binary.Varint(rest)
		if n <= 0 {
			return 0, nil, ErrCorrupt
		}
		rest = rest[n:]
		snap[name] = Value(val)
	}
	if len(rest) != 0 {
		return 0, nil, ErrCorrupt
	}
	return gsn, snap, nil
}

// DirBackend lays a segmented log out on disk:
//
//	dir/shard-NN/seg-NNNNNN.wal       published segments
//	dir/shard-NN/seg-NNNNNN.wal.tmp   created, not yet published
//	dir/snapshot-<gsn>.snap           compaction snapshots
type DirBackend struct {
	dir string
}

// NewDirBackend returns a backend rooted at dir (created on demand).
func NewDirBackend(dir string) *DirBackend { return &DirBackend{dir: dir} }

func (b *DirBackend) shardDir(s int) string {
	return filepath.Join(b.dir, fmt.Sprintf("shard-%02d", s))
}

func segFileName(index int) string { return fmt.Sprintf("seg-%06d.wal", index) }

func snapFileName(gsn uint64) string { return fmt.Sprintf("snapshot-%016x.snap", gsn) }

// Create opens shard's segment under a .tmp name.
func (b *DirBackend) Create(shard, index int) (SegmentFile, error) {
	dir := b.shardDir(shard)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(dir, segFileName(index)+".tmp"))
}

// Publish renames the .tmp segment to its final name.
func (b *DirBackend) Publish(shard, index int) error {
	name := filepath.Join(b.shardDir(shard), segFileName(index))
	return os.Rename(name+".tmp", name)
}

// WriteSnapshot writes the snapshot through a tmp+rename so recovery
// only ever sees whole files; older snapshots are pruned best-effort.
func (b *DirBackend) WriteSnapshot(gsn uint64, data []byte) error {
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(b.dir, snapFileName(gsn))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if old, err := filepath.Glob(filepath.Join(b.dir, "snapshot-*.snap")); err == nil {
		for _, p := range old {
			if p != final {
				os.Remove(p) //nolint:errcheck // pruning is best-effort
			}
		}
	}
	return nil
}

// DropSegment removes a published segment file.
func (b *DirBackend) DropSegment(shard, index int) error {
	return os.Remove(filepath.Join(b.shardDir(shard), segFileName(index)))
}

// Reset wipes the backend's own namespace (shard-* directories and
// snapshot files) so a fresh log can be written, mirroring how
// OpenWALFile truncates. Foreign files in dir are left alone.
func (b *DirBackend) Reset() error {
	entries, err := os.ReadDir(b.dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "shard-"):
			if err := os.RemoveAll(filepath.Join(b.dir, name)); err != nil {
				return err
			}
		case !e.IsDir() && strings.HasPrefix(name, "snapshot-"):
			if err := os.Remove(filepath.Join(b.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadWALDir loads a DirBackend directory into a SegmentSet. Segment
// files are read whole (in index order per shard); .tmp files are
// counted unpublished and skipped; the newest decodable snapshot wins.
func ReadWALDir(dir string) (*SegmentSet, error) {
	set := &SegmentSet{Shards: map[int][][]byte{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "shard-"):
			var shard int
			if _, err := fmt.Sscanf(name, "shard-%d", &shard); err != nil {
				continue
			}
			segs, err := os.ReadDir(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			var files []string
			for _, s := range segs {
				sn := s.Name()
				if strings.HasSuffix(sn, ".tmp") {
					set.Unpublished++
					continue
				}
				if strings.HasPrefix(sn, "seg-") && strings.HasSuffix(sn, ".wal") {
					files = append(files, sn)
				}
			}
			sort.Strings(files) // seg-%06d sorts numerically
			for _, fn := range files {
				b, err := os.ReadFile(filepath.Join(dir, name, fn))
				if err != nil {
					return nil, err
				}
				set.Shards[shard] = append(set.Shards[shard], b)
			}
		case !e.IsDir() && strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			gsn, snap, err := ReadSnapshotFile(filepath.Join(dir, name))
			if err != nil {
				// Damaged snapshot: fall back to an older one or full
				// replay, but surface which file was skipped so the
				// degradation is diagnosable.
				set.DamagedSnapshots = append(set.DamagedSnapshots, err)
				continue
			}
			if set.Snapshot == nil || gsn > set.SnapshotGSN {
				set.SnapshotGSN, set.Snapshot = gsn, snap
			}
		}
	}
	return set, nil
}

// SnapshotError wraps a snapshot read/decode failure with the file it
// came from (and the lane for shard-scoped callers; -1 means the
// whole-store snapshot), so callers like rsreplay -from-snapshot can
// report which artifact broke — matching rsrecover's JSON "shard"
// convention.
type SnapshotError struct {
	Path  string
	Shard int
	Err   error
}

func (e *SnapshotError) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("storage: snapshot %s (shard %d): %v", e.Path, e.Shard, e.Err)
	}
	return fmt.Sprintf("storage: snapshot %s: %v", e.Path, e.Err)
}

func (e *SnapshotError) Unwrap() error { return e.Err }

// ReadSnapshotFile reads and decodes one snapshot file. Failures carry
// the path (with ErrCorrupt still reachable via errors.Is) instead of
// the bare DecodeSnapshot diagnosis.
func ReadSnapshotFile(path string) (uint64, map[string]Value, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, &SnapshotError{Path: path, Shard: -1, Err: err}
	}
	gsn, snap, err := DecodeSnapshot(b)
	if err != nil {
		return 0, nil, &SnapshotError{Path: path, Shard: -1, Err: err}
	}
	return gsn, snap, nil
}

// LatestSnapshot locates the newest decodable snapshot in a segmented
// WAL directory and returns its path alongside its contents. When the
// directory holds snapshot files but none decode, the error is the
// newest candidate's *SnapshotError; a directory with no snapshot
// files at all returns os.ErrNotExist wrapped with the directory name.
func LatestSnapshot(dir string) (string, uint64, map[string]Value, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil {
		return "", 0, nil, err
	}
	// snapshot-%016x names sort by GSN; walk newest-first.
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	var firstErr error
	for _, p := range paths {
		gsn, snap, err := ReadSnapshotFile(p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return p, gsn, snap, nil
	}
	if firstErr != nil {
		return "", 0, nil, firstErr
	}
	return "", 0, nil, fmt.Errorf("storage: no snapshot in %s: %w", dir, os.ErrNotExist)
}

// MemBackend keeps segments in memory: the tests' and experiments'
// crash-model backend. SegmentSet returns the bytes a process crash
// would leave behind (published segments only), so chaos sweeps can
// truncate them into crash prefixes.
type MemBackend struct {
	mu     sync.Mutex
	shards map[int]map[int]*memSegment
	snap   []byte
	// SyncDelay, if set, is slept on every segment Sync — a simulated
	// fsync cost for group-commit benchmarks.
	SyncDelay time.Duration
	syncs     int64
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{shards: map[int]map[int]*memSegment{}}
}

type memSegment struct {
	b         *MemBackend
	buf       []byte
	published bool
}

func (s *memSegment) Write(p []byte) (int, error) {
	s.b.mu.Lock()
	s.buf = append(s.buf, p...)
	s.b.mu.Unlock()
	return len(p), nil
}

func (s *memSegment) Sync() error {
	s.b.mu.Lock()
	s.b.syncs++
	d := s.b.SyncDelay
	s.b.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return nil
}

func (s *memSegment) Close() error { return nil }

// Create opens an unpublished in-memory segment.
func (b *MemBackend) Create(shard, index int) (SegmentFile, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.shards[shard] == nil {
		b.shards[shard] = map[int]*memSegment{}
	}
	seg := &memSegment{b: b}
	b.shards[shard][index] = seg
	return seg, nil
}

// Publish marks the segment visible to SegmentSet.
func (b *MemBackend) Publish(shard, index int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	seg := b.shards[shard][index]
	if seg == nil {
		return fmt.Errorf("storage: publish of unknown segment %d/%d", shard, index)
	}
	seg.published = true
	return nil
}

// WriteSnapshot stores the encoded snapshot.
func (b *MemBackend) WriteSnapshot(gsn uint64, data []byte) error {
	b.mu.Lock()
	b.snap = append([]byte(nil), data...)
	b.mu.Unlock()
	return nil
}

// DropSegment forgets a sealed segment.
func (b *MemBackend) DropSegment(shard, index int) error {
	b.mu.Lock()
	delete(b.shards[shard], index)
	b.mu.Unlock()
	return nil
}

// Syncs returns the number of segment fsyncs issued so far.
func (b *MemBackend) Syncs() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.syncs
}

// SegmentSet snapshots the published segments (deep-copied) plus the
// stored compaction snapshot, exactly what a crash would leave.
func (b *MemBackend) SegmentSet() (*SegmentSet, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := &SegmentSet{Shards: map[int][][]byte{}}
	for shard, segs := range b.shards {
		idxs := make([]int, 0, len(segs))
		for i, s := range segs {
			if s.published {
				idxs = append(idxs, i)
			} else {
				set.Unpublished++
			}
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			set.Shards[shard] = append(set.Shards[shard], append([]byte(nil), segs[i].buf...))
		}
	}
	if b.snap != nil {
		gsn, snap, err := DecodeSnapshot(b.snap)
		if err != nil {
			return nil, err
		}
		set.SnapshotGSN, set.Snapshot = gsn, snap
	}
	return set, nil
}
