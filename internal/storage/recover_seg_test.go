package storage

import (
	"fmt"
	"sort"
	"testing"
)

// buildTwoLaneSet logs one transaction per lane in a known global
// order and returns the crash image: lane 0 commits first (lower GSN),
// lane 1 second.
func buildTwoLaneSet(t *testing.T) (*SegmentSet, [2]int64) {
	t.Helper()
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	i0 := laneInstance(w, 0, 1)
	i1 := laneInstance(w, 1, 1)
	logTxn(t, w, i0, "x", 1) // GSNs 1..3
	logTxn(t, w, i1, "y", 2) // GSNs 4..6
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	return set, [2]int64{i0, i1}
}

// sortedBoundaries returns a segment's unit boundaries in order.
func sortedBoundaries(seg []byte) []int {
	m := segFrameBoundaries(seg)
	out := make([]int, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// TestRecoverSegmentedCrossShardCut tears lane 0's commit frame: the
// cut (lane 0's horizon) must also discard lane 1's later commit, even
// though lane 1's log is pristine — the cross-shard reconciliation the
// design argues for.
func TestRecoverSegmentedCrossShardCut(t *testing.T) {
	set, _ := buildTwoLaneSet(t)

	// Control: the intact image recovers both commits.
	st, rep, err := RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Committed != 2 {
		t.Fatalf("control recovery: %s", rep)
	}
	if snap := st.Snapshot(); snap["x"] != 1 || snap["y"] != 2 {
		t.Fatalf("control store: %v", snap)
	}

	// Tear lane 0 three bytes into its commit frame.
	seg := set.Shards[0][0]
	bounds := sortedBoundaries(seg)
	commitStart := bounds[len(bounds)-2]
	set.Shards[0][0] = seg[:commitStart+3]

	st, rep, err = RecoverSegmented(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("torn lane 0 reported clean")
	}
	if !rep.CutApplied || rep.CutShard != 0 {
		t.Fatalf("cut not applied by shard 0: %s", rep)
	}
	if rep.Cut != 2 {
		t.Fatalf("cut = %d, want 2 (lane 0's last valid record)", rep.Cut)
	}
	if rep.Committed != 0 || rep.BeyondCut != 1 {
		t.Fatalf("want 0 commits and 1 beyond the cut, got: %s", rep)
	}
	snap := st.Snapshot()
	if len(snap) != 0 {
		t.Fatalf("store not empty after cut: %v", snap)
	}
}

// TestRecoverSegmentedFirstDamagedDeterministic damages several lanes
// in different ways: the reported first-failing shard is the lowest
// index per damage kind, never a scan-order race.
func TestRecoverSegmentedFirstDamagedDeterministic(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var from int64 = 1
	for lane := 0; lane < 4; lane++ {
		id := laneInstance(w, lane, from)
		from = id + 1
		logTxn(t, w, id, fmt.Sprintf("o%d", lane), Value(lane+1))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	set, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	// Lanes 1 and 3: torn (mid-frame truncation). Lane 2: corrupt (bit
	// flip in a frame payload).
	for _, lane := range []int{1, 3} {
		seg := set.Shards[lane][0]
		bounds := sortedBoundaries(seg)
		set.Shards[lane][0] = seg[:bounds[len(bounds)-2]+3]
	}
	flip := append([]byte(nil), set.Shards[2][0]...)
	flip[SegmentHeaderSize+segFrameHeaderSize+2] ^= 0x10
	set.Shards[2][0] = flip

	for i := 0; i < 10; i++ {
		_, rep, err := RecoverSegmented(set, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sh, ok := rep.FirstDamaged(); !ok || sh.Shard != 1 {
			t.Fatalf("run %d: first damaged = %+v (ok=%v), want shard 1", i, sh, ok)
		}
		if sh, ok := rep.FirstDamagedKind(TailTorn); !ok || sh.Shard != 1 {
			t.Fatalf("run %d: first torn = %+v (ok=%v), want shard 1", i, sh, ok)
		}
		if sh, ok := rep.FirstDamagedKind(TailCorrupt); !ok || sh.Shard != 2 {
			t.Fatalf("run %d: first corrupt = %+v (ok=%v), want shard 2", i, sh, ok)
		}
	}
}

// TestRecoverSegmentedPrefixDependencyClean encodes a cross-lane
// dependency chain — y is only advanced to k after x reached k — and
// sweeps EVERY byte prefix of each lane: recovery must never produce a
// state with y > x, which is exactly what the cross-shard cut
// guarantees (all dependencies point at lower GSNs).
func TestRecoverSegmentedPrefixDependencyClean(t *testing.T) {
	mem := NewMemBackend()
	w, err := NewShardedWAL(mem, SegmentedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var from0, from1 int64 = 1, 1
	for k := 1; k <= 10; k++ {
		i0 := laneInstance(w, 0, from0)
		from0 = i0 + 1
		logTxn(t, w, i0, "x", Value(k))
		i1 := laneInstance(w, 1, from1)
		from1 = i1 + 1
		logTxn(t, w, i1, "y", Value(k))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := mem.SegmentSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Shards[0]) != 1 || len(full.Shards[1]) != 1 {
		t.Fatalf("want one segment per lane, got %d/%d", len(full.Shards[0]), len(full.Shards[1]))
	}
	for lane := 0; lane < 2; lane++ {
		whole := full.Shards[lane][0]
		for cut := 0; cut <= len(whole); cut++ {
			set := &SegmentSet{Shards: map[int][][]byte{
				0: {full.Shards[0][0]},
				1: {full.Shards[1][0]},
			}}
			set.Shards[lane] = [][]byte{whole[:cut]}
			st, rep, err := RecoverSegmented(set, nil)
			if err != nil {
				t.Fatalf("lane %d cut %d: %v", lane, cut, err)
			}
			snap := st.Snapshot()
			x, y := snap["x"], snap["y"]
			// Truncating the dependent lane (1) can only lose y-commits;
			// truncating lane 0 mid-frame engages the cut, which must drag
			// y back below x. A clean-boundary truncation of lane 0 is
			// indistinguishable from "those frames were never appended"
			// (an fsynced, acknowledged commit cannot sit in a lost clean
			// suffix), so no cut applies and only phantom checks hold.
			if lane == 1 || rep.Shards[lane].Damaged {
				if y > x {
					t.Fatalf("lane %d cut %d: y=%d > x=%d (report: %s)", lane, cut, y, x, rep)
				}
			}
			if x < 0 || x > 10 || y < 0 || y > 10 {
				t.Fatalf("lane %d cut %d: phantom values x=%d y=%d", lane, cut, x, y)
			}
		}
	}
}
