module relser

go 1.22
