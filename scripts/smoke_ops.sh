#!/usr/bin/env sh
# Ops-endpoint smoke: run rssim with the live observability plane
# serving, scrape /metrics, /healthz and /debug/flight while the
# endpoint lingers after the run, and assert the canonical keys are
# present. CI runs this in the test job (`make smoke-ops`).
set -eu

addr="127.0.0.1:${OPS_PORT:-6097}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"; kill $pid 2>/dev/null || true' EXIT

go run ./cmd/rssim -workload synthetic -concurrent -shards 4 -scale 8 \
	-ops "$addr" -linger 30s >"$tmp/rssim.log" 2>&1 &
pid=$!

# Wait for the endpoint to come up (the run itself may already be done;
# -linger keeps it scrapable).
i=0
until curl -sf "http://$addr/healthz" >"$tmp/healthz.json" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "ops endpoint never came up; rssim log:" >&2
		cat "$tmp/rssim.log" >&2
		exit 1
	fi
	sleep 0.2
done

fail() {
	echo "smoke-ops: $1" >&2
	cat "$tmp/rssim.log" >&2
	exit 1
}

curl -sf "http://$addr/metrics" >"$tmp/metrics.txt"
grep -q '^# TYPE txn_committed counter' "$tmp/metrics.txt" || fail "/metrics lacks txn_committed"
grep -q '^# TYPE obs_ring_recorded counter' "$tmp/metrics.txt" || fail "/metrics lacks obs_ring_recorded"
grep -q '^txn_latency{quantile="0.5"}' "$tmp/metrics.txt" || fail "/metrics lacks txn_latency quantiles"
curl -sf "http://$addr/metrics?format=json" | grep -q '"txn.committed"' || fail "/metrics?format=json lacks txn.committed"
grep -q '"status"' "$tmp/healthz.json" || fail "/healthz lacks status"
curl -sf "http://$addr/debug/flight" | head -1 | grep -q '"kind"' || fail "/debug/flight is not event JSONL"
curl -sf "http://$addr/debug/spans" | head -1 | grep -q '"status"' || fail "/debug/spans is not span JSONL"
curl -sf -o /dev/null "http://$addr/debug/pprof/" || fail "/debug/pprof/ not mounted"

echo "smoke-ops: all endpoints healthy on $addr"
