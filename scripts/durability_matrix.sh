#!/usr/bin/env sh
# Durability certification matrix: every cell runs a concurrent banking
# workload through a write-ahead log, then certifies recovery of that
# log with rsrecover — shards in {1, 4, 16} crossed with the legacy
# single-file WAL and the per-shard segmented log (-group-commit).
# A damage leg then tears two segmented lanes' tails and asserts
# rsrecover diagnoses the *first failing shard* deterministically in
# its structured JSON error (exit 3, "shard": lowest torn lane), and
# that -shard filters a recovery to one lane.
#
# RACE=1 builds the binaries under the race detector (the CI job does).
# Artifacts (logs, WAL images, recovery reports) land in $OUT
# (default: a mktemp dir, kept on failure for upload).
set -u

RACE_FLAG=""
[ "${RACE:-0}" = "1" ] && RACE_FLAG="-race"
OUT="${OUT:-$(mktemp -d)}"
mkdir -p "$OUT/bin"
fails=0

note() { echo "durability-matrix: $*"; }
fail() {
	echo "durability-matrix: FAIL: $*" >&2
	fails=$((fails + 1))
}

# go run masks the program's exit status (always 1 on nonzero), so the
# damage leg's exit-code assertions need real binaries.
# shellcheck disable=SC2086
go build $RACE_FLAG -o "$OUT/bin/rssim" ./cmd/rssim || exit 1
# shellcheck disable=SC2086
go build $RACE_FLAG -o "$OUT/bin/rsrecover" ./cmd/rsrecover || exit 1
RSSIM="$OUT/bin/rssim"
RSRECOVER="$OUT/bin/rsrecover"

for shards in 1 4 16; do
	for mode in legacy segmented; do
		cell="shards=$shards/$mode"
		dir="$OUT/$mode-$shards"
		mkdir -p "$dir"
		case "$mode" in
		legacy) walpath="$dir/run.wal" walflags="-wal $dir/run.wal" ;;
		segmented) walpath="$dir/waldir" walflags="-wal $dir/waldir -group-commit" ;;
		esac
		# shellcheck disable=SC2086
		if ! "$RSSIM" -workload banking -concurrent -shards "$shards" \
			-seed 7 $walflags >"$dir/rssim.log" 2>&1; then
			fail "$cell: rssim failed (see $dir/rssim.log)"
			cat "$dir/rssim.log" >&2
			continue
		fi
		if ! "$RSRECOVER" -wal "$walpath" -strict \
			>"$dir/recover.log" 2>"$dir/recover.err"; then
			fail "$cell: rsrecover -strict nonzero (see $dir/recover.err)"
			cat "$dir/recover.err" >&2
			continue
		fi
		if ! grep -q ' 0 unfinished, 0 orphans' "$dir/recover.log"; then
			fail "$cell: recovery report not clean: $(head -1 "$dir/recover.log")"
			continue
		fi
		note "$cell ok"
	done
done

# ---- damage leg: deterministic first-failing-shard diagnosis --------
dmg="$OUT/damage"
mkdir -p "$dmg"
if ! "$RSSIM" -workload banking -concurrent -shards 4 -seed 7 \
	-wal "$dmg/waldir" -group-commit >"$dmg/rssim.log" 2>&1; then
	fail "damage: rssim failed"
	cat "$dmg/rssim.log" >&2
else
	# Tear the tails of shards 3 and 1: the report must name shard 1
	# (lowest torn lane), run after run.
	for lane in 3 1; do
		seg="$(ls "$dmg/waldir/shard-0$lane"/seg-*.wal | sort | tail -1)"
		truncate -s -3 "$seg"
	done
	for i in 1 2 3; do
		"$RSRECOVER" -wal "$dmg/waldir" \
			>"$dmg/recover.log" 2>"$dmg/recover.err"
		rc=$?
		[ "$rc" -eq 3 ] || fail "damage run $i: expected exit 3, got $rc"
		grep -q '"error":"torn-tail"' "$dmg/recover.err" ||
			fail "damage run $i: stderr lacks torn-tail JSON"
		grep -q '"shard":1' "$dmg/recover.err" ||
			fail "damage run $i: JSON does not name shard 1 (got: $(cat "$dmg/recover.err"))"
	done
	# -shard filters to one lane: lane 0 is undamaged (exit 0), lane 1
	# is torn (exit 3).
	"$RSRECOVER" -wal "$dmg/waldir" -shard 0 >/dev/null 2>&1 ||
		fail "-shard 0 on undamaged lane: expected exit 0"
	"$RSRECOVER" -wal "$dmg/waldir" -shard 1 >/dev/null 2>&1
	rc=$?
	[ "$rc" -eq 3 ] || fail "-shard 1 on torn lane: expected exit 3, got $rc"
	[ "$fails" -eq 0 ] && note "damage leg ok"
fi

if [ "$fails" -gt 0 ]; then
	echo "durability-matrix: $fails failure(s); artifacts in $OUT" >&2
	exit 1
fi
note "all cells passed (artifacts in $OUT)"
