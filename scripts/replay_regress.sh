#!/usr/bin/env sh
# Replay-regression gate: every committed .rsrec artifact in
# examples/recordings/ must replay byte-identically (rsreplay exit 0) —
# once an incident is captured, the repo never regresses on it — then a
# fresh record -> replay -> corrupt -> backfill cycle certifies the
# harness and its exit-code contract end to end (0 identical,
# 3 divergence, 4 unreadable). CI runs this in the test job
# (`make replay-regress`).
set -eu

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() {
	echo "replay-regress: $1" >&2
	exit 1
}

# Real binaries, not `go run`: the exit-code contract is the thing
# under test, and `go run` collapses every nonzero exit to 1.
go build -o "$tmp/rsreplay" ./cmd/rsreplay
go build -o "$tmp/rssim" ./cmd/rssim

# rsreplay's exit code, without tripping set -e.
replay() {
	set +e
	"$tmp/rsreplay" "$@" >"$tmp/report.json" 2>"$tmp/err.json"
	code=$?
	set -e
	return 0
}

# 1. Committed regression corpus: every artifact replays identically.
count=0
for rec in examples/recordings/*.rsrec; do
	[ -e "$rec" ] || fail "no committed recordings in examples/recordings/"
	replay -in "$rec"
	[ "$code" -eq 0 ] || { cat "$tmp/err.json" >&2; fail "$rec: expected exit 0 (identical), got $code"; }
	grep -q '"identical": *true' "$tmp/report.json" || fail "$rec: report does not say identical"
	count=$((count + 1))
	echo "replay-regress: $rec replays byte-identically"
done
[ "$count" -ge 2 ] || fail "expected >=2 committed recordings, found $count"

# 2. Fresh capture: record a chaotic banking run, then exercise the
# whole exit-code contract on the artifact.
"$tmp/rssim" -workload banking -protocol rsgt -seed 11 \
	-faults 'wal.torn:0.01,txn.abort:0.2' -wal "$tmp/run.wal" \
	-record "$tmp/run.rsrec" >"$tmp/rssim.log" 2>&1 || true
[ -s "$tmp/run.rsrec" ] || { cat "$tmp/rssim.log" >&2; fail "rssim -record produced no artifact"; }

replay -in "$tmp/run.rsrec"
[ "$code" -eq 0 ] || fail "fresh recording: expected exit 0, got $code"

replay -in "$tmp/run.rsrec" -spec absolute
[ "$code" -eq 0 ] || [ "$code" -eq 3 ] || fail "backfill: expected exit 0 or 3, got $code"
grep -q '"mode": *"backfill"' "$tmp/report.json" || fail "backfill: report mode is not backfill"

# 3. Known-divergent backfill: banking seed 7 at MPL 16 under rsgt
# admits interleavings absolute atomicity rejects, so backfilling with
# -spec absolute must report divergence (exit 3).
"$tmp/rssim" -workload banking -protocol rsgt -seed 7 -mpl 16 \
	-record "$tmp/div.rsrec" >"$tmp/rssim2.log" 2>&1 ||
	{ cat "$tmp/rssim2.log" >&2; fail "divergence-base rssim run failed"; }
replay -in "$tmp/div.rsrec" -spec absolute
[ "$code" -eq 3 ] || fail "known-divergent backfill: expected exit 3, got $code"
grep -q '"kind"' "$tmp/report.json" || fail "known-divergent backfill: report has no divergences"

# Truncating the artifact mid-frame must be diagnosed as unreadable.
size=$(wc -c <"$tmp/run.rsrec")
head -c "$((size - 7))" "$tmp/run.rsrec" >"$tmp/torn.rsrec"
replay -in "$tmp/torn.rsrec"
[ "$code" -eq 4 ] || fail "torn artifact: expected exit 4 (unreadable), got $code"
grep -q '"unreadable-artifact"' "$tmp/err.json" || fail "torn artifact: stderr lacks unreadable-artifact"

echo "replay-regress: $count committed recording(s) + fresh record/backfill/corrupt cycle all pass"
