// Package relser is the public API of the relative serializability
// library, a faithful implementation of
//
//	D. Agrawal, J. L. Bruno, A. El Abbadi, V. Krishnaswamy.
//	"Relative Serializability: An Approach for Relaxing the Atomicity
//	of Transactions." PODS 1994.
//
// The package re-exports the transaction model and the paper's theory
// from internal/core:
//
//   - build transactions with T, R and W, and group them with
//     NewTxnSet;
//   - declare relative atomicity with NewSpec / Spec.SetUnits (the
//     Atomicity(Ti, Tj) partitions of §2);
//   - construct schedules with NewSchedule, ParseSchedule or
//     SerialSchedule;
//   - classify them: IsRelativelyAtomic (Definition 1),
//     IsRelativelySerial (Definition 2), IsRelativelySerializable
//     (Theorem 1 via the relative serialization graph), and the
//     classical IsConflictSerializable;
//   - inspect the machinery: ComputeDepends (the depends-on relation),
//     BuildRSG (Definition 3's I/D/F/B-arc graph, with DOT export and
//     witness extraction), BuildSG.
//
// Quick start:
//
//	t1 := relser.T(1, relser.R("x"), relser.W("x"), relser.W("z"), relser.R("y"))
//	t2 := relser.T(2, relser.R("y"), relser.W("y"), relser.R("x"))
//	ts, _ := relser.NewTxnSet(t1, t2)
//	spec := relser.NewSpec(ts)
//	_ = spec.SetUnits(1, 2, 2, 2) // Atomicity(T1,T2) = [r1x w1x][w1z r1y]
//	s, _ := relser.ParseSchedule(ts, "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] r1[y]")
//	ok := relser.IsRelativelySerializable(s, spec)
//
// The execution side of the reproduction — storage engine, online
// protocols (strict 2PL, SGT, the paper's RSGT, altruistic locking),
// the transaction runtime and the workload generators — lives under
// internal/ and is exercised through the cmd/ binaries (rscheck,
// rsenum, rssim, rsbench) and the examples/ programs; see DESIGN.md
// for the full inventory.
package relser

import (
	"relser/internal/core"
)

// Core model types (see internal/core for full documentation).
type (
	// TxnID identifies a transaction; IDs are positive.
	TxnID = core.TxnID
	// OpKind distinguishes reads from writes.
	OpKind = core.OpKind
	// Op is one read or write operation on a named object.
	Op = core.Op
	// Transaction is a totally ordered operation sequence.
	Transaction = core.Transaction
	// TxnSet is an indexed, immutable set of transactions.
	TxnSet = core.TxnSet
	// Schedule is a complete interleaving of a TxnSet.
	Schedule = core.Schedule
	// Spec holds relative atomicity specifications (§2).
	Spec = core.Spec
	// Depends is the materialized depends-on relation (§2).
	Depends = core.Depends
	// Violation explains a failed class membership test.
	Violation = core.Violation
	// RSG is the relative serialization graph (Definition 3).
	RSG = core.RSG
	// SG is the classical serialization graph.
	SG = core.SG
	// ArcKind is the I/D/F/B arc-kind bitmask of RSG arcs.
	ArcKind = core.ArcKind
	// ConflictPair is an ordered conflicting operation pair.
	ConflictPair = core.ConflictPair
	// Instance bundles a set, a spec and named schedules (text format).
	Instance = core.Instance
)

// Operation kinds and RSG arc kinds.
const (
	ReadOp  = core.ReadOp
	WriteOp = core.WriteOp

	IArc = core.IArc
	DArc = core.DArc
	FArc = core.FArc
	BArc = core.BArc
)

// Model constructors.
var (
	// R builds a read operation for use with T.
	R = core.R
	// W builds a write operation for use with T.
	W = core.W
	// T assembles a transaction from R/W operations.
	T = core.T
	// NewTxnSet validates and indexes transactions.
	NewTxnSet = core.NewTxnSet
	// MustTxnSet is NewTxnSet panicking on error.
	MustTxnSet = core.MustTxnSet

	// NewSchedule validates a complete interleaving.
	NewSchedule = core.NewSchedule
	// MustSchedule is NewSchedule panicking on error.
	MustSchedule = core.MustSchedule
	// SerialSchedule executes whole transactions in the given order.
	SerialSchedule = core.SerialSchedule
	// ConflictEquivalent compares conflict orders of two schedules (§2).
	ConflictEquivalent = core.ConflictEquivalent

	// NewSpec returns the absolute-atomicity specification.
	NewSpec = core.NewSpec

	// ComputeDepends materializes the depends-on relation (§2).
	ComputeDepends = core.ComputeDepends
	// ComputeDirectDepends is the non-transitive ablation (Figure 2).
	ComputeDirectDepends = core.ComputeDirectDepends

	// IsRelativelyAtomic tests Definition 1 membership.
	IsRelativelyAtomic = core.IsRelativelyAtomic
	// IsRelativelySerial tests Definition 2 membership.
	IsRelativelySerial = core.IsRelativelySerial
	// IsRelativelySerialUnder tests Definition 2 with a caller-supplied
	// depends-on relation.
	IsRelativelySerialUnder = core.IsRelativelySerialUnder
	// IsRelativelySerializable tests Theorem 1's criterion (RSG
	// acyclicity).
	IsRelativelySerializable = core.IsRelativelySerializable
	// IsConflictSerializable tests the classical criterion.
	IsConflictSerializable = core.IsConflictSerializable

	// BuildRSG constructs the relative serialization graph.
	BuildRSG = core.BuildRSG
	// BuildRSGUnder constructs it with a caller-supplied depends-on.
	BuildRSGUnder = core.BuildRSGUnder
	// BuildSG constructs the classical serialization graph.
	BuildSG = core.BuildSG
	// SerialWitness extracts a conflict-equivalent serial schedule.
	SerialWitness = core.SerialWitness

	// ParseOp, ParseOps, ParseTxn and ParseSchedule read the paper's
	// r1[x] notation; ParseInstance reads full instance files and
	// FormatInstance writes them.
	ParseOp        = core.ParseOp
	ParseOps       = core.ParseOps
	ParseTxn       = core.ParseTxn
	ParseSchedule  = core.ParseSchedule
	ParseInstance  = core.ParseInstance
	FormatInstance = core.FormatInstance
)
