package relser_test

import (
	"testing"

	"relser"
)

// TestFacadeQuickstart exercises the public API exactly as the package
// documentation shows.
func TestFacadeQuickstart(t *testing.T) {
	t1 := relser.T(1, relser.R("x"), relser.W("x"), relser.W("z"), relser.R("y"))
	t2 := relser.T(2, relser.R("y"), relser.W("y"), relser.R("x"))
	ts, err := relser.NewTxnSet(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	spec := relser.NewSpec(ts)
	if err := spec.SetUnits(1, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetUnits(2, 1, 1, 2); err != nil { // [r2y][w2y r2x], as in Figure 1
		t.Fatal(err)
	}
	s, err := relser.ParseSchedule(ts, "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] r1[y]")
	if err != nil {
		t.Fatal(err)
	}
	if !relser.IsRelativelySerializable(s, spec) {
		t.Error("quickstart schedule should be relatively serializable")
	}
	if ok, _ := relser.IsRelativelyAtomic(s, spec); !ok {
		t.Error("quickstart schedule respects the declared units")
	}
	rsg := relser.BuildRSG(s, spec)
	if !rsg.Acyclic() {
		t.Error("RSG should be acyclic")
	}
	if rsg.NumVertices() != 7 {
		t.Errorf("NumVertices = %d", rsg.NumVertices())
	}
	w, err := rsg.Witness()
	if err != nil {
		t.Fatal(err)
	}
	if !relser.ConflictEquivalent(w, s) {
		t.Error("witness must be conflict equivalent")
	}
}

func TestFacadeConstantsAndKinds(t *testing.T) {
	if relser.ReadOp.String() != "r" || relser.WriteOp.String() != "w" {
		t.Error("op kind aliases broken")
	}
	kinds := relser.IArc | relser.DArc | relser.FArc | relser.BArc
	if kinds.String() != "I,D,F,B" {
		t.Errorf("arc kinds = %s", kinds)
	}
}

func TestFacadeSerialAndSG(t *testing.T) {
	ts := relser.MustTxnSet(
		relser.T(1, relser.W("a")),
		relser.T(2, relser.R("a")),
	)
	s, err := relser.SerialSchedule(ts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !relser.IsConflictSerializable(s) {
		t.Error("serial schedule must be conflict serializable")
	}
	sg := relser.BuildSG(s)
	if !sg.HasArc(2, 1) {
		t.Error("SG should order T2 before T1")
	}
	w, err := relser.SerialWitness(s)
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsSerial() {
		t.Error("witness must be serial")
	}
}
