package relser_test

// Benchmark harness: one benchmark per experiment of the reproduction
// (E1-E14, DESIGN.md §4), plus micro-benchmarks for the paper's core
// machinery (depends-on, RSG construction, the class tests, the
// relatively-consistent search, and the online protocols).
//
// The per-experiment benchmarks execute the same code paths as
// cmd/rsbench and the figures in EXPERIMENTS.md; they time a full
// experiment run at quick sizes so `go test -bench=.` regenerates
// every reported quantity.

import (
	"fmt"
	"io"
	"testing"

	"relser"
	"relser/internal/consistent"
	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/experiments"
	"relser/internal/metrics"
	"relser/internal/paperfig"
	"relser/internal/sched"
	"relser/internal/trace"
	"relser/internal/workload"
)

// benchExperiment runs a whole experiment per iteration and fails the
// benchmark if any mechanically checked paper claim does not hold.
func benchExperiment(b *testing.B, id string, quick bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, experiments.Options{Quick: quick, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass() {
			for _, c := range rep.Claims {
				if !c.Pass {
					b.Fatalf("%s: claim failed: %s", id, c.Text)
				}
			}
		}
	}
}

// --- One benchmark per experiment -----------------------------------

func BenchmarkE1Fig1Classification(b *testing.B)  { benchExperiment(b, "E1", false) }
func BenchmarkE2Fig2DependsAblation(b *testing.B) { benchExperiment(b, "E2", false) }
func BenchmarkE3Fig3ExactRSG(b *testing.B)        { benchExperiment(b, "E3", false) }
func BenchmarkE4Fig4Separation(b *testing.B)      { benchExperiment(b, "E4", false) }
func BenchmarkE5Fig5Census(b *testing.B)          { benchExperiment(b, "E5", true) }
func BenchmarkE6RSGScaling(b *testing.B)          { benchExperiment(b, "E6", true) }
func BenchmarkE7RCvsRSG(b *testing.B)             { benchExperiment(b, "E7", true) }
func BenchmarkE8Protocols(b *testing.B)           { benchExperiment(b, "E8", true) }
func BenchmarkE9Granularity(b *testing.B)         { benchExperiment(b, "E9", true) }
func BenchmarkE10Lemma1(b *testing.B)             { benchExperiment(b, "E10", true) }
func BenchmarkE11RelatedWork(b *testing.B)        { benchExperiment(b, "E11", false) }
func BenchmarkE12Chopping(b *testing.B)           { benchExperiment(b, "E12", false) }
func BenchmarkE13Concurrent(b *testing.B)         { benchExperiment(b, "E13", true) }
func BenchmarkE14Semantics(b *testing.B)          { benchExperiment(b, "E14", false) }

// --- Core machinery micro-benchmarks --------------------------------

func fig1Fixture(b *testing.B) (*core.Schedule, *core.Spec) {
	b.Helper()
	inst := paperfig.Figure1()
	return inst.Schedules["Srs"], inst.Spec
}

func BenchmarkComputeDependsFig1(b *testing.B) {
	s, _ := fig1Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ComputeDepends(s)
	}
}

func BenchmarkBuildRSGFig1(b *testing.B) {
	s, sp := fig1Fixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.BuildRSG(s, sp)
	}
}

func BenchmarkIsRelativelySerialFig1(b *testing.B) {
	s, sp := fig1Fixture(b)
	for i := 0; i < b.N; i++ {
		if ok, _ := core.IsRelativelySerial(s, sp); !ok {
			b.Fatal("Srs must be relatively serial")
		}
	}
}

func BenchmarkIsRelativelySerializableSizes(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			s, sp := syntheticSchedule(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				relser.IsRelativelySerializable(s, sp)
			}
		})
	}
}

func syntheticSchedule(b *testing.B, totalOps int) (*core.Schedule, *core.Spec) {
	b.Helper()
	cfg := workload.SyntheticConfig{
		Objects:     totalOps / 4,
		Programs:    totalOps / 8,
		OpsPerTxn:   8,
		WriteRatio:  0.3,
		Granularity: 2,
	}
	w, err := workload.Synthetic(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := core.NewTxnSet(w.Programs...)
	if err != nil {
		b.Fatal(err)
	}
	// Round-robin interleaving, deterministic and fully mixed.
	cursors := make([]int, ts.NumTxns())
	txns := ts.Txns()
	ops := make([]core.Op, 0, ts.NumOps())
	for len(ops) < ts.NumOps() {
		for k, tx := range txns {
			if cursors[k] < tx.Len() {
				ops = append(ops, tx.Op(cursors[k]))
				cursors[k]++
			}
		}
	}
	s := core.MustSchedule(ts, ops)
	sp := core.NewSpec(ts)
	for _, a := range txns {
		for _, bb := range txns {
			if a.ID == bb.ID {
				continue
			}
			for _, cut := range w.Oracle.Cuts(a, bb) {
				if err := sp.CutAfter(a.ID, bb.ID, cut-1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return s, sp
}

func BenchmarkConflictSerializableSizes(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			s, _ := syntheticSchedule(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.IsConflictSerializable(s)
			}
		})
	}
}

func BenchmarkRelativelyConsistentFig4(b *testing.B) {
	inst := paperfig.Figure4()
	s := inst.Schedules["S"]
	for i := 0; i < b.N; i++ {
		if consistent.IsRelativelyConsistent(s, inst.Spec).Consistent {
			b.Fatal("Figure 4's S must not be relatively consistent")
		}
	}
}

func BenchmarkCensusFig2(b *testing.B) {
	inst := paperfig.Figure2()
	for i := 0; i < b.N; i++ {
		c := enumerate.TakeCensus(inst.Set, inst.Spec, true)
		if c.ContainmentViolations != 0 {
			b.Fatal("containment violation")
		}
	}
}

// --- Online protocol micro-benchmarks --------------------------------

func benchProtocol(b *testing.B, name string) {
	cfg := workload.DefaultBankingConfig()
	cfg.Customers = 16
	cfg.CrossingAudits = true
	for i := 0; i < b.N; i++ {
		w, err := workload.Banking(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		var p sched.Protocol
		switch name {
		case "s2pl":
			p = sched.NewS2PL()
		case "sgt":
			p = sched.NewSGT()
		case "rsgt":
			p = sched.NewRSGT(w.Oracle)
		case "altruistic":
			p = sched.NewAltruistic(w.Oracle)
		case "ral":
			p = sched.NewRAL(w.Oracle)
		case "to":
			p = sched.NewTO()
		}
		res, err := w.Run(p, 1, 8)
		if err != nil {
			b.Fatal(err)
		}
		if res.Committed != len(w.Programs) {
			b.Fatal("incomplete run")
		}
	}
}

func BenchmarkProtocolS2PLBanking(b *testing.B)       { benchProtocol(b, "s2pl") }
func BenchmarkProtocolSGTBanking(b *testing.B)        { benchProtocol(b, "sgt") }
func BenchmarkProtocolRSGTBanking(b *testing.B)       { benchProtocol(b, "rsgt") }
func BenchmarkProtocolAltruisticBanking(b *testing.B) { benchProtocol(b, "altruistic") }
func BenchmarkProtocolTOBanking(b *testing.B)         { benchProtocol(b, "to") }
func BenchmarkProtocolRALBanking(b *testing.B)        { benchProtocol(b, "ral") }

func BenchmarkRuntimeLongLivedRSGT(b *testing.B) {
	cfg := workload.DefaultLongLivedConfig()
	for i := 0; i < b.N; i++ {
		w, err := workload.LongLived(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := w.Run(sched.NewRSGT(w.Oracle), 1, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCommittedSchedule(b *testing.B) {
	w, err := workload.Banking(workload.DefaultBankingConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := w.Run(sched.NewRSGT(w.Oracle), 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRSGTRequestPath drives the RSGT Request hot path directly:
// two concurrent transactions interleaving grants on disjoint objects,
// re-admitted every iteration. Comparing the TracerOff and TracerOn
// variants (allocations are reported) shows what tracing costs when
// enabled — and that the disabled guard adds none.
func benchRSGTRequestPath(b *testing.B, tr *trace.Tracer) {
	progs := []*core.Transaction{
		core.T(1, core.R("a"), core.W("b"), core.R("c"), core.W("d")),
		core.T(2, core.R("e"), core.W("f"), core.R("g"), core.W("h")),
	}
	p := sched.NewRSGT(sched.AbsoluteOracle{})
	sched.Attach(p, tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := int64(i) * 2
		for j, prog := range progs {
			p.Begin(base+int64(j)+1, prog)
		}
		for seq := 0; seq < progs[0].Len(); seq++ {
			for j, prog := range progs {
				req := sched.OpRequest{Instance: base + int64(j) + 1, Program: prog, Seq: seq, Op: prog.Op(seq)}
				if d := p.Request(req); d != sched.Grant {
					b.Fatalf("want grant, got %v", d)
				}
			}
		}
		for j := range progs {
			p.Commit(base + int64(j) + 1)
		}
	}
}

func BenchmarkRSGTRequestTracerOff(b *testing.B) { benchRSGTRequestPath(b, nil) }

func BenchmarkRSGTRequestTracerOn(b *testing.B) {
	benchRSGTRequestPath(b, trace.New(trace.NewJSONLWriter(io.Discard)))
}

// BenchmarkRuntimeTracedBanking measures whole-run overhead of full
// tracing plus metrics against BenchmarkProtocolRSGTBanking above.
func BenchmarkRuntimeTracedBanking(b *testing.B) {
	w, err := workload.Banking(workload.DefaultBankingConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := w.RunWith(sched.NewRSGT(w.Oracle), workload.RunOptions{
			Seed:    1,
			MPL:     8,
			Tracer:  trace.New(trace.NewJSONLWriter(io.Discard)),
			Metrics: metrics.NewRegistry(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Committed != len(w.Programs) {
			b.Fatal("incomplete run")
		}
	}
}
