package relser_test

// End-to-end observability test: a traced run of the synthetic
// workload under RSGT, where every scheduler rejection explanation is
// replayed through the offline RSG machinery of the paper (§3) and
// confirmed to be a genuine cycle — the same check `rssim -trace`
// performs, exercised here hermetically.

import (
	"strings"
	"testing"

	"relser/internal/sched"
	"relser/internal/trace"
	"relser/internal/workload"
)

func TestTracedRunCycleRejectionsReplayVerify(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Granularity = 2
	w, err := workload.Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sched.NewProtocol("rsgt", w.Oracle)
	if err != nil {
		t.Fatal(err)
	}
	buf := trace.NewBuffer()
	res, _, err := w.RunWith(p, workload.RunOptions{
		Seed: 1, MPL: 8, Tracer: trace.New(buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("committed schedule failed certification: %v", err)
	}
	events := buf.Events()
	counts := trace.CountKinds(events)
	if counts[trace.KindGrant] == 0 || counts[trace.KindCommit] != res.Committed {
		t.Fatalf("event counts inconsistent with result: %v vs %v", counts, res)
	}
	rejects := counts[trace.KindCycleReject]
	if rejects == 0 {
		t.Fatal("run produced no cycle rejections; pick a more contended seed")
	}
	for _, ev := range events {
		if ev.Kind != trace.KindCycleReject {
			continue
		}
		if ev.Cycle == nil || len(ev.Cycle.Arcs) < 2 {
			t.Fatalf("cycle-reject without a usable cycle: %+v", ev)
		}
		if !strings.Contains(ev.Cycle.String(), "->") {
			t.Errorf("cycle explanation unrendered: %q", ev.Cycle.String())
		}
	}
	checked, err := trace.VerifyCycles(events, w.Oracle.Cuts)
	if err != nil {
		t.Fatalf("replay verification failed after %d cycle(s): %v", checked, err)
	}
	if checked != rejects {
		t.Fatalf("verified %d cycles, trace has %d", checked, rejects)
	}
}

// TestTracingPreservesDecisions runs the same workload traced and
// untraced and demands identical outcomes: observability must never
// perturb scheduling.
func TestTracingPreservesDecisions(t *testing.T) {
	run := func(tr *trace.Tracer) string {
		cfg := workload.DefaultSyntheticConfig()
		cfg.Granularity = 2
		w, err := workload.Synthetic(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := w.RunWith(sched.NewRSGT(w.Oracle), workload.RunOptions{
			Seed: 1, MPL: 8, Tracer: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	untraced := run(nil)
	traced := run(trace.New(trace.NewBuffer()))
	if untraced != traced {
		t.Fatalf("tracing changed the run:\nuntraced: %s\ntraced:   %s", untraced, traced)
	}
}
