// rschop analyses transaction choppings [SSV92] and bridges them into
// relative atomicity: it reads a transaction set (instance file or a
// built-in paper figure), chops it, builds the SC-graph, decides
// correctness, and can emit the graph as Graphviz DOT or the induced
// relative atomicity specification as an instance file.
//
// Usage:
//
//	rschop -in instance.txt -piece 2        # uniform 2-op pieces
//	rschop -fig 1 -piece 2 -dot > sc.dot
//	rschop -in instance.txt -piece 2 -spec  # print the induced spec
package main

import (
	"flag"
	"fmt"
	"os"

	"relser/internal/chopping"
	"relser/internal/core"
	"relser/internal/metrics"
	"relser/internal/paperfig"
)

func main() {
	var (
		inPath = flag.String("in", "", "instance file (defaults to stdin when no -fig)")
		figNum = flag.Int("fig", 0, "use the paper's Figure N transactions (1-4)")
		piece  = flag.Int("piece", 2, "uniform piece size in operations")
		dot    = flag.Bool("dot", false, "emit the SC-graph as DOT and exit")
		spec   = flag.Bool("spec", false, "emit the induced relative atomicity spec as an instance file")
	)
	flag.Parse()

	inst, err := loadInstance(*inPath, *figNum)
	if err != nil {
		fatal(err)
	}
	c, err := chopping.Uniform(inst.Set, *piece)
	if err != nil {
		fatal(err)
	}
	g := chopping.BuildSCGraph(c)
	if *dot {
		fmt.Print(g.Dot(fmt.Sprintf("chopping-%d", *piece)))
		return
	}
	if *spec {
		sp, err := c.ToSpec()
		if err != nil {
			fatal(err)
		}
		out := &core.Instance{Set: inst.Set, Spec: sp, Schedules: map[string]*core.Schedule{}}
		fmt.Print(core.FormatInstance(out))
		return
	}

	tb := metrics.NewTable("Chopping analysis", "transaction", "pieces")
	for _, t := range inst.Set.Txns() {
		tb.AddRow(fmt.Sprintf("T%d", int(t.ID)), len(c.PiecesOf(t.ID)))
	}
	fmt.Print(tb)
	fmt.Printf("\nSC-graph: %d pieces, %d edges\n", len(c.Pieces()), g.NumEdges())
	if off := g.OffendingComponent(); off != nil {
		fmt.Println("verdict: INCORRECT chopping — SC-cycle through:")
		for _, p := range off {
			fmt.Printf("  %s\n", p)
		}
		os.Exit(2)
	}
	fmt.Println("verdict: correct chopping — piece-atomic executions under strict 2PL stay serializable [SSV92]")
	fmt.Println("(use -spec to emit the equivalent relative atomicity specification)")
}

func loadInstance(path string, fig int) (*core.Instance, error) {
	if fig != 0 {
		all := paperfig.All()
		if fig < 1 || fig > len(all) {
			return nil, fmt.Errorf("figure %d out of range 1-%d", fig, len(all))
		}
		return all[fig-1].Instance, nil
	}
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return core.ParseInstance(in)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rschop:", err)
	os.Exit(1)
}
