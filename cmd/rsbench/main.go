// rsbench regenerates the paper's figures and the reproduction's
// quantitative studies as experiment reports (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for a recorded run).
//
// Usage:
//
//	rsbench                 # run every experiment, full size
//	rsbench -e E3           # one experiment
//	rsbench -e E6,E7 -quick # quick sizes
//	rsbench -e E8 -json     # also write BENCH_E8.json
//	rsbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"relser/internal/experiments"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/trace"
)

func main() {
	var (
		which      = flag.String("e", "all", "comma-separated experiment ids, or 'all'")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seed       = flag.Int64("seed", 1, "seed for randomized components")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonOut    = flag.Bool("json", false, "write each report as BENCH_<id>.json")
		outDir     = flag.String("outdir", ".", "directory for -json artifacts")
		tracePath  = flag.String("trace", "", "capture structured runtime events (JSONL) across all experiments")
		metricsOn  = flag.Bool("metrics", false, "print the accumulated runtime metrics registry at the end")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		shards     = flag.Int("shards", 1, "shard count for the concurrent driver's hot path (rounded up to a power of two)")
		faultSpec  = flag.String("faults", "", "E16: replace the built-in chaos specs with this fault spec (point:rate[:duration],...)")
		timeout    = flag.Duration("timeout", 0, "bound each workload run inside an experiment with a context deadline (0 disables); an expired run errors the experiment instead of hanging")
		opsAddr    = flag.String("ops", "", "serve the live ops endpoint (/metrics, /healthz, /debug/flight, /debug/trace, pprof) on this address while experiments run, e.g. :6060")
		rsgRetire  = flag.Bool("rsg-retire", true, "bounded-memory certification (graph retirement + vector-clock fast path) in experiments that run the online drivers; E20 sweeps both settings itself")
		recordDir  = flag.String("record", "", "E16: capture every deterministic chaos run as a .rsrec artifact in this directory (time-travel failures with rsreplay)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := experiments.IDs()
	if *which != "all" {
		ids = nil
		for _, id := range strings.Split(*which, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, Shards: *shards, FaultSpec: *faultSpec, Timeout: *timeout, RecordDir: *recordDir, DisableRSGRetire: !*rsgRetire}
	if *recordDir != "" {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			fatal(err)
		}
	}
	var buf *trace.Buffer
	if *tracePath != "" {
		buf = trace.NewBuffer()
		opts.Tracer = trace.New(buf)
	}
	if *metricsOn || *opsAddr != "" {
		opts.Metrics = metrics.NewRegistry()
	}
	var opsSrv *obs.Server
	if *opsAddr != "" {
		plane := obs.New(obs.Options{Registry: opts.Metrics})
		opts.Obs = plane
		srv, err := plane.Serve(*opsAddr)
		if err != nil {
			fatal(err)
		}
		opsSrv = srv
		fmt.Printf("ops: live endpoint on http://%s (/metrics /healthz /debug/flight /debug/spans /debug/trace /debug/pprof/)\n", srv.Addr())
	}

	// Every requested experiment runs even if an earlier one errors;
	// the summary table at the end reports per-experiment outcomes.
	type outcome struct {
		id     string
		wall   time.Duration
		status string // ok | claims-failed | error
		err    error
	}
	var (
		outcomes []outcome
		failed   int
		errored  int
	)
	for i, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, opts)
		wall := time.Since(start)
		o := outcome{id: id, wall: wall, status: "ok", err: err}
		if err != nil {
			o.status = "error"
			errored++
			fmt.Fprintln(os.Stderr, "rsbench:", err)
			outcomes = append(outcomes, o)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Println(rep)
		fmt.Printf("(%s wall %s)\n", id, wall.Round(time.Millisecond))
		if !rep.Pass() {
			o.status = "claims-failed"
			failed++
		}
		if *jsonOut {
			a := rep.Artifact(opts, wall.Milliseconds())
			a.GitSHA = gitSHA()
			if err := writeArtifact(*outDir, a); err != nil {
				fatal(err)
			}
		}
		outcomes = append(outcomes, o)
	}

	if opsSrv != nil {
		if err := opsSrv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rsbench: ops close:", err)
		}
	}
	if buf != nil {
		if err := writeTrace(*tracePath, buf); err != nil {
			fatal(err)
		}
	}
	if opts.Metrics != nil {
		fmt.Println()
		if _, err := opts.Metrics.Snapshot().Table("runtime metrics (all experiments)").WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if len(ids) > 1 {
		tb := metrics.NewTable("Summary", "experiment", "status", "wall")
		for _, o := range outcomes {
			tb.AddRow(o.id, o.status, o.wall.Round(time.Millisecond).String())
		}
		fmt.Println()
		if _, err := tb.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if errored > 0 {
		fmt.Fprintf(os.Stderr, "rsbench: %d experiment(s) errored\n", errored)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rsbench: %d experiment(s) with failing claims\n", failed)
		os.Exit(2)
	}
}

func writeArtifact(dir string, a experiments.Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+a.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(%s artifact -> %s)\n", a.ID, path)
	return nil
}

// gitSHA identifies the commit a benchmark artifact was produced from:
// the build info's vcs.revision when the binary was built from a clean
// module checkout, the working tree's HEAD under `go run`, and
// "unknown" when neither is available.
func gitSHA() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	return "unknown"
}

func writeTrace(path string, buf *trace.Buffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events := buf.Events()
	if err := trace.WriteJSONL(f, events); err != nil {
		return err
	}
	fmt.Printf("(trace: %d events -> %s)\n", len(events), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsbench:", err)
	os.Exit(1)
}
