// rsbench regenerates the paper's figures and the reproduction's
// quantitative studies as experiment reports (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for a recorded run).
//
// Usage:
//
//	rsbench                 # run every experiment, full size
//	rsbench -e E3           # one experiment
//	rsbench -e E6,E7 -quick # quick sizes
//	rsbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relser/internal/experiments"
)

func main() {
	var (
		which = flag.String("e", "all", "comma-separated experiment ids, or 'all'")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seed  = flag.Int64("seed", 1, "seed for randomized components")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := experiments.IDs()
	if *which != "all" {
		ids = nil
		for _, id := range strings.Split(*which, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	failed := 0
	for i, id := range ids {
		rep, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsbench:", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Println(rep)
		if !rep.Pass() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rsbench: %d experiment(s) with failing claims\n", failed)
		os.Exit(2)
	}
}
