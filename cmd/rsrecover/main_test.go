package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relser/internal/storage"
)

// writeLog builds a committed-transfer WAL and returns its raw bytes.
func writeLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	wal := storage.NewWAL(&buf)
	recs := []storage.WALRecord{
		{Kind: storage.WALBegin, Instance: 1},
		{Kind: storage.WALWrite, Instance: 1, Object: "x", Value: 41},
		{Kind: storage.WALWrite, Instance: 1, Object: "y", Value: 59},
		{Kind: storage.WALCommit, Instance: 1},
		{Kind: storage.WALBegin, Instance: 2},
		{Kind: storage.WALWrite, Instance: 2, Object: "x", Value: 7},
	}
	for _, rec := range recs {
		if err := wal.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func walFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runRecover(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCleanLogExitsZero(t *testing.T) {
	path := walFile(t, writeLog(t))
	code, stdout, stderr := runRecover(t, "-wal", path)
	if code != 0 {
		t.Fatalf("clean log: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "x = 41") || !strings.Contains(stdout, "y = 59") {
		t.Fatalf("committed values missing from output:\n%s", stdout)
	}
	if strings.Contains(stdout, "x = 7") {
		t.Fatalf("unfinished instance's write leaked into recovery:\n%s", stdout)
	}
}

func TestTornTailExitsThreeWithStructuredError(t *testing.T) {
	data := writeLog(t)
	path := walFile(t, data[:len(data)-3]) // tear inside the last record
	code, stdout, stderr := runRecover(t, "-wal", path)
	if code != 3 {
		t.Fatalf("torn tail: exit %d, want 3 (stderr %q)", code, stderr)
	}
	var te struct {
		Error   string `json:"error"`
		Offset  int64  `json:"offset"`
		Detail  string `json:"detail"`
		Records int    `json:"records"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &te); err != nil {
		t.Fatalf("stderr is not one JSON line: %v\n%q", err, stderr)
	}
	if te.Error != "torn-tail" || te.Detail == "" || te.Offset <= 0 {
		t.Fatalf("unexpected structured error: %+v", te)
	}
	// The committed prefix must still recover.
	if !strings.Contains(stdout, "x = 41") {
		t.Fatalf("valid prefix not recovered:\n%s", stdout)
	}
}

func TestCorruptTailWarnsByDefaultAndFailsStrict(t *testing.T) {
	data := writeLog(t)
	data[len(data)-1] ^= 0x40 // flip a payload bit in the final record
	path := walFile(t, data)

	code, _, stderr := runRecover(t, "-wal", path)
	if code != 0 {
		t.Fatalf("corrupt tail without -strict: exit %d, want 0 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "warning") || !strings.Contains(stderr, "corrupt") {
		t.Fatalf("expected a corrupt-tail warning, got %q", stderr)
	}

	code, _, stderr = runRecover(t, "-wal", path, "-strict")
	if code != 4 {
		t.Fatalf("corrupt tail with -strict: exit %d, want 4 (stderr %q)", code, stderr)
	}
	var te struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &te); err != nil || te.Error != "corrupt-tail" {
		t.Fatalf("want structured corrupt-tail error, got %q (err %v)", stderr, err)
	}
}

func TestMissingFlagExitsOne(t *testing.T) {
	if code, _, _ := runRecover(t); code != 1 {
		t.Fatalf("missing -wal: exit %d, want 1", code)
	}
}
