package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relser/internal/shard"
	"relser/internal/storage"
)

// writeLog builds a committed-transfer WAL and returns its raw bytes.
func writeLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	wal := storage.NewWAL(&buf)
	recs := []storage.WALRecord{
		{Kind: storage.WALBegin, Instance: 1},
		{Kind: storage.WALWrite, Instance: 1, Object: "x", Value: 41},
		{Kind: storage.WALWrite, Instance: 1, Object: "y", Value: 59},
		{Kind: storage.WALCommit, Instance: 1},
		{Kind: storage.WALBegin, Instance: 2},
		{Kind: storage.WALWrite, Instance: 2, Object: "x", Value: 7},
	}
	for _, rec := range recs {
		if err := wal.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func walFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runRecover(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCleanLogExitsZero(t *testing.T) {
	path := walFile(t, writeLog(t))
	code, stdout, stderr := runRecover(t, "-wal", path)
	if code != 0 {
		t.Fatalf("clean log: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "x = 41") || !strings.Contains(stdout, "y = 59") {
		t.Fatalf("committed values missing from output:\n%s", stdout)
	}
	if strings.Contains(stdout, "x = 7") {
		t.Fatalf("unfinished instance's write leaked into recovery:\n%s", stdout)
	}
}

func TestTornTailExitsThreeWithStructuredError(t *testing.T) {
	data := writeLog(t)
	path := walFile(t, data[:len(data)-3]) // tear inside the last record
	code, stdout, stderr := runRecover(t, "-wal", path)
	if code != 3 {
		t.Fatalf("torn tail: exit %d, want 3 (stderr %q)", code, stderr)
	}
	var te struct {
		Error   string `json:"error"`
		Offset  int64  `json:"offset"`
		Detail  string `json:"detail"`
		Records int    `json:"records"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &te); err != nil {
		t.Fatalf("stderr is not one JSON line: %v\n%q", err, stderr)
	}
	if te.Error != "torn-tail" || te.Detail == "" || te.Offset <= 0 {
		t.Fatalf("unexpected structured error: %+v", te)
	}
	// The committed prefix must still recover.
	if !strings.Contains(stdout, "x = 41") {
		t.Fatalf("valid prefix not recovered:\n%s", stdout)
	}
}

func TestCorruptTailWarnsByDefaultAndFailsStrict(t *testing.T) {
	data := writeLog(t)
	data[len(data)-1] ^= 0x40 // flip a payload bit in the final record
	path := walFile(t, data)

	code, _, stderr := runRecover(t, "-wal", path)
	if code != 0 {
		t.Fatalf("corrupt tail without -strict: exit %d, want 0 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "warning") || !strings.Contains(stderr, "corrupt") {
		t.Fatalf("expected a corrupt-tail warning, got %q", stderr)
	}

	code, _, stderr = runRecover(t, "-wal", path, "-strict")
	if code != 4 {
		t.Fatalf("corrupt tail with -strict: exit %d, want 4 (stderr %q)", code, stderr)
	}
	var te struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &te); err != nil || te.Error != "corrupt-tail" {
		t.Fatalf("want structured corrupt-tail error, got %q (err %v)", stderr, err)
	}
}

func TestMissingFlagExitsOne(t *testing.T) {
	if code, _, _ := runRecover(t); code != 1 {
		t.Fatalf("missing -wal: exit %d, want 1", code)
	}
}

// writeSegmentedLog runs transactions through a 4-lane segmented WAL
// in dir and returns instance ids grouped by the lane they routed to.
func writeSegmentedLog(t *testing.T, dir string) map[int][]int64 {
	t.Helper()
	w, err := storage.OpenShardedWAL(dir, storage.SegmentedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := shard.NewRouter(4)
	byLane := map[int][]int64{}
	for id := int64(1); len(byLane[0]) < 3 || len(byLane[1]) < 3 || len(byLane[2]) < 3 || len(byLane[3]) < 3; id++ {
		lane := r.ShardID(id)
		if len(byLane[lane]) >= 3 {
			continue
		}
		byLane[lane] = append(byLane[lane], id)
		recs := []storage.WALRecord{
			{Kind: storage.WALBegin, Instance: id},
			{Kind: storage.WALWrite, Instance: id, Object: fmt.Sprintf("o%d", id), Value: storage.Value(id)},
			{Kind: storage.WALCommit, Instance: id},
		}
		for _, rec := range recs[:2] {
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.AppendSync(recs[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return byLane
}

// damageShard truncates (torn) or bit-flips (corrupt) the first
// segment of one lane in a segmented log directory.
func damageShard(t *testing.T, dir string, lane int, corrupt bool) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("shard-%02d", lane), "seg-000000.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt {
		data[len(data)-2] ^= 0x40 // payload bit of the final record
	} else {
		data = data[:len(data)-3] // tear inside the final record
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedCleanExitsZero(t *testing.T) {
	dir := t.TempDir()
	byLane := writeSegmentedLog(t, dir)
	code, stdout, stderr := runRecover(t, "-wal", dir)
	if code != 0 {
		t.Fatalf("clean segmented log: exit %d, stderr %q", code, stderr)
	}
	for _, ids := range byLane {
		for _, id := range ids {
			if !strings.Contains(stdout, fmt.Sprintf("o%d = %d", id, id)) {
				t.Fatalf("committed o%d missing from output:\n%s", id, stdout)
			}
		}
	}
}

// TestSegmentedTornReportsFirstShard: with lanes 3 and 1 both torn,
// the structured error must name shard 1 on every run — the policy is
// lowest index, not goroutine finish order.
func TestSegmentedTornReportsFirstShard(t *testing.T) {
	dir := t.TempDir()
	writeSegmentedLog(t, dir)
	damageShard(t, dir, 3, false)
	damageShard(t, dir, 1, false)
	for i := 0; i < 5; i++ {
		code, _, stderr := runRecover(t, "-wal", dir)
		if code != 3 {
			t.Fatalf("run %d: exit %d, want 3 (stderr %q)", i, code, stderr)
		}
		var te struct {
			Error string `json:"error"`
			Shard int    `json:"shard"`
		}
		if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &te); err != nil {
			t.Fatalf("run %d: stderr is not one JSON line: %v\n%q", i, err, stderr)
		}
		if te.Error != "torn-tail" || te.Shard != 1 {
			t.Fatalf("run %d: got %+v, want torn-tail on shard 1", i, te)
		}
	}
}

func TestSegmentedCorruptWarnsThenFailsStrict(t *testing.T) {
	dir := t.TempDir()
	writeSegmentedLog(t, dir)
	damageShard(t, dir, 2, true)

	code, _, stderr := runRecover(t, "-wal", dir)
	if code != 0 {
		t.Fatalf("corrupt lane without -strict: exit %d (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "shard 2") {
		t.Fatalf("warning does not name shard 2: %q", stderr)
	}

	code, _, stderr = runRecover(t, "-wal", dir, "-strict")
	if code != 4 {
		t.Fatalf("corrupt lane with -strict: exit %d, want 4 (stderr %q)", code, stderr)
	}
	var te struct {
		Error string `json:"error"`
		Shard int    `json:"shard"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(stderr)), &te); err != nil || te.Error != "corrupt-tail" || te.Shard != 2 {
		t.Fatalf("want structured corrupt-tail on shard 2, got %q (err %v)", stderr, err)
	}
}

// TestSegmentedShardFilter: -shard restricts recovery to one lane, so
// damage elsewhere is invisible and damage there still fails.
func TestSegmentedShardFilter(t *testing.T) {
	dir := t.TempDir()
	byLane := writeSegmentedLog(t, dir)
	damageShard(t, dir, 1, false)

	code, stdout, stderr := runRecover(t, "-wal", dir, "-shard", "0")
	if code != 0 {
		t.Fatalf("-shard 0 with damage on shard 1: exit %d (stderr %q)", code, stderr)
	}
	id := byLane[0][0]
	if !strings.Contains(stdout, fmt.Sprintf("o%d = %d", id, id)) {
		t.Fatalf("lane 0 values missing:\n%s", stdout)
	}

	code, _, stderr = runRecover(t, "-wal", dir, "-shard", "1")
	if code != 3 {
		t.Fatalf("-shard 1 on torn lane: exit %d, want 3 (stderr %q)", code, stderr)
	}
	if code, _, _ := runRecover(t, "-wal", dir, "-shard", "9"); code != 1 {
		t.Fatalf("-shard 9 (absent): exit %d, want 1", code)
	}
}

func TestShardFlagRejectedForFiles(t *testing.T) {
	path := walFile(t, writeLog(t))
	if code, _, _ := runRecover(t, "-wal", path, "-shard", "0"); code != 1 {
		t.Fatal("-shard on a file log should be a usage error")
	}
}
