// rsrecover rebuilds a store from a write-ahead log produced by rssim
// (or any storage.WAL user) and reports what survived: only fully
// committed transactions' effects are applied; aborted, unfinished and
// torn-tail records leave no trace.
//
// Usage:
//
//	rssim -workload banking -protocol rsgt -wal run.wal
//	rsrecover -wal run.wal
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"relser/internal/storage"
)

func main() {
	var (
		walPath = flag.String("wal", "", "write-ahead log file to recover from (required)")
		values  = flag.Bool("values", true, "print the recovered object values")
	)
	flag.Parse()
	if *walPath == "" {
		fatal(fmt.Errorf("-wal is required"))
	}
	f, err := os.Open(*walPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	store, report, err := storage.Recover(f, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)
	if *values {
		snap := store.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %s = %d\n", name, snap[name])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsrecover:", err)
	os.Exit(1)
}
