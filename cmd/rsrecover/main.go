// rsrecover rebuilds a store from a write-ahead log produced by rssim
// (or any storage.WAL user) and reports what survived: only fully
// committed transactions' effects are applied; aborted, unfinished and
// torn-tail records leave no trace.
//
// Given a file, it recovers the legacy single-lane log. Given a
// directory, it recovers a per-shard segmented log (rssim
// -group-commit): every lane is scanned in parallel and a cross-shard
// cut reconciles damage, so the output is a consistent prefix of the
// committed history. -shard restricts a segmented recovery to one lane.
//
// A log that ends mid-record (torn tail — the shape of a crash during
// an append) is recovered up to the tear but reported as a structured
// JSON error on stderr with exit status 3, never silently truncated.
// With -strict any damaged tail — including a checksum mismatch on a
// complete record — fails with exit status 4. For segmented logs the
// reported shard is deterministic: the lowest-indexed torn lane wins
// exit 3; otherwise the lowest-indexed corrupt lane wins exit 4 — never
// whichever recovery goroutine happened to finish first. The JSON error
// carries the failing shard ("shard": -1 for single-lane logs).
//
// Usage:
//
//	rssim -workload banking -protocol rsgt -wal run.wal
//	rsrecover -wal run.wal
//	rsrecover -wal run.wal -strict
//	rssim -workload banking -concurrent -wal waldir -group-commit
//	rsrecover -wal waldir
//	rsrecover -wal waldir -shard 2
//
// Exit status: 0 clean (or corrupt tail without -strict, after a
// warning), 1 usage or I/O error, 3 torn tail, 4 -strict violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"relser/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// tailError is the structured form of a damaged-tail diagnosis,
// emitted as a single JSON line on stderr for machine consumption.
type tailError struct {
	Error string `json:"error"` // "torn-tail" | "corrupt-tail"
	// Shard is the deterministic first failing lane of a segmented log
	// (-1 for single-lane logs); Segment is the damaged segment's
	// position in that lane's scan order.
	Shard   int    `json:"shard"`
	Segment int    `json:"segment"`
	Offset  int64  `json:"offset"`
	Detail  string `json:"detail"`
	Records int    `json:"records"` // valid records recovered before the damage
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsrecover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		walPath  = fs.String("wal", "", "write-ahead log to recover from: a file (single-lane) or a directory (segmented; required)")
		values   = fs.Bool("values", true, "print the recovered object values")
		strict   = fs.Bool("strict", false, "fail (exit 4) on any damaged tail, including checksum mismatches")
		shardSel = fs.Int("shard", -1, "segmented logs: recover only this lane (-1 = all lanes with cross-shard reconciliation)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *walPath == "" {
		fmt.Fprintln(stderr, "rsrecover: -wal is required")
		return 1
	}
	info, err := os.Stat(*walPath)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	if info.IsDir() {
		return runSegmented(*walPath, *shardSel, *values, *strict, stdout, stderr)
	}
	if *shardSel >= 0 {
		fmt.Fprintln(stderr, "rsrecover: -shard applies only to segmented log directories")
		return 1
	}
	f, err := os.Open(*walPath)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	defer f.Close()
	store, report, err := storage.Recover(f, nil)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	fmt.Fprintln(stdout, report)
	printValues(stdout, store, *values)
	switch report.Tail.Tail {
	case storage.TailTorn:
		emitTailError(stderr, "torn-tail", -1, 0, report.Tail, report.Records)
		return 3
	case storage.TailCorrupt:
		if *strict {
			emitTailError(stderr, "corrupt-tail", -1, 0, report.Tail, report.Records)
			return 4
		}
		fmt.Fprintf(stderr, "rsrecover: warning: corrupt tail at offset %d: %s (recovery kept the valid prefix; rerun with -strict to fail on this)\n",
			report.Tail.Offset, report.Tail.Detail)
	}
	return 0
}

// runSegmented recovers a per-shard segmented log directory.
func runSegmented(dir string, shardSel int, values, strict bool, stdout, stderr io.Writer) int {
	set, err := storage.ReadWALDir(dir)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	for _, derr := range set.DamagedSnapshots {
		fmt.Fprintf(stderr, "rsrecover: warning: skipping damaged snapshot: %v\n", derr)
	}
	if shardSel >= 0 {
		segs, ok := set.Shards[shardSel]
		if !ok {
			fmt.Fprintf(stderr, "rsrecover: no shard %d in %s\n", shardSel, dir)
			return 1
		}
		set.Shards = map[int][][]byte{shardSel: segs}
	}
	store, report, err := storage.RecoverSegmented(set, nil)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	fmt.Fprintln(stdout, report)
	printValues(stdout, store, values)
	// Deterministic damage policy: the lowest-indexed torn lane decides
	// exit 3; failing that, the lowest-indexed corrupt lane decides
	// exit 4 under -strict (warning otherwise).
	if sh, ok := report.FirstDamagedKind(storage.TailTorn); ok {
		emitTailError(stderr, "torn-tail", sh.Shard, sh.TailSegment, sh.Tail, report.Records)
		return 3
	}
	if sh, ok := report.FirstDamagedKind(storage.TailCorrupt); ok {
		if strict {
			emitTailError(stderr, "corrupt-tail", sh.Shard, sh.TailSegment, sh.Tail, report.Records)
			return 4
		}
		fmt.Fprintf(stderr, "rsrecover: warning: corrupt tail on shard %d segment %d at offset %d: %s (recovery kept the valid prefix; rerun with -strict to fail on this)\n",
			sh.Shard, sh.TailSegment, sh.Tail.Offset, sh.Tail.Detail)
	}
	return 0
}

func printValues(stdout io.Writer, store *storage.Store, on bool) {
	if !on {
		return
	}
	snap := store.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "  %s = %d\n", name, snap[name])
	}
}

func emitTailError(stderr io.Writer, kind string, shard, segment int, tail storage.ScanReport, records int) {
	line, _ := json.Marshal(tailError{
		Error:   kind,
		Shard:   shard,
		Segment: segment,
		Offset:  tail.Offset,
		Detail:  tail.Detail,
		Records: records,
	})
	fmt.Fprintln(stderr, string(line))
}
