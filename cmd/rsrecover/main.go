// rsrecover rebuilds a store from a write-ahead log produced by rssim
// (or any storage.WAL user) and reports what survived: only fully
// committed transactions' effects are applied; aborted, unfinished and
// torn-tail records leave no trace.
//
// A log that ends mid-record (torn tail — the shape of a crash during
// an append) is recovered up to the tear but reported as a structured
// JSON error on stderr with exit status 3, never silently truncated.
// With -strict any damaged tail — including a checksum mismatch on a
// complete record — fails with exit status 4.
//
// Usage:
//
//	rssim -workload banking -protocol rsgt -wal run.wal
//	rsrecover -wal run.wal
//	rsrecover -wal run.wal -strict
//
// Exit status: 0 clean (or corrupt tail without -strict, after a
// warning), 1 usage or I/O error, 3 torn tail, 4 -strict violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"relser/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// tailError is the structured form of a damaged-tail diagnosis,
// emitted as a single JSON line on stderr for machine consumption.
type tailError struct {
	Error   string `json:"error"` // "torn-tail" | "corrupt-tail"
	Offset  int64  `json:"offset"`
	Detail  string `json:"detail"`
	Records int    `json:"records"` // valid records recovered before the damage
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsrecover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		walPath = fs.String("wal", "", "write-ahead log file to recover from (required)")
		values  = fs.Bool("values", true, "print the recovered object values")
		strict  = fs.Bool("strict", false, "fail (exit 4) on any damaged tail, including checksum mismatches")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *walPath == "" {
		fmt.Fprintln(stderr, "rsrecover: -wal is required")
		return 1
	}
	f, err := os.Open(*walPath)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	defer f.Close()
	store, report, err := storage.Recover(f, nil)
	if err != nil {
		fmt.Fprintln(stderr, "rsrecover:", err)
		return 1
	}
	fmt.Fprintln(stdout, report)
	if *values {
		snap := store.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "  %s = %d\n", name, snap[name])
		}
	}
	switch report.Tail.Tail {
	case storage.TailTorn:
		emitTailError(stderr, "torn-tail", report)
		return 3
	case storage.TailCorrupt:
		if *strict {
			emitTailError(stderr, "corrupt-tail", report)
			return 4
		}
		fmt.Fprintf(stderr, "rsrecover: warning: corrupt tail at offset %d: %s (recovery kept the valid prefix; rerun with -strict to fail on this)\n",
			report.Tail.Offset, report.Tail.Detail)
	}
	return 0
}

func emitTailError(stderr io.Writer, kind string, report *storage.RecoveryReport) {
	line, _ := json.Marshal(tailError{
		Error:   kind,
		Offset:  report.Tail.Offset,
		Detail:  report.Tail.Detail,
		Records: report.Records,
	})
	fmt.Fprintln(stderr, string(line))
}
