package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"relser/internal/record"
	"relser/internal/storage"
	"relser/internal/workload"
)

// writeRecording records a small deterministic banking run to disk and
// returns the artifact path.
func writeRecording(t *testing.T, mutate func(*record.Manifest)) string {
	t.Helper()
	m := record.Manifest{
		Workload:    workload.BuildParams{Name: "banking", Seed: 7, Crossing: true},
		Protocol:    "rsgt",
		Seed:        7,
		MPL:         16,
		MaxRestarts: 100000,
	}
	if mutate != nil {
		mutate(&m)
	}
	rr, err := record.Record(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.rsrec")
	if err := rr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runReplay(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func decodeReport(t *testing.T, stdout string) record.Report {
	t.Helper()
	var rep record.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	return rep
}

// TestIdenticalReplayExitsZero: byte-identical replay of a
// deterministic recording exits 0 with an identical report — on every
// attempt, not just the first.
func TestIdenticalReplayExitsZero(t *testing.T) {
	path := writeRecording(t, nil)
	for i := 0; i < 3; i++ {
		code, stdout, stderr := runReplay(t, "-in", path)
		if code != 0 {
			t.Fatalf("attempt %d: exit %d, stderr %q stdout %s", i, code, stderr, stdout)
		}
		rep := decodeReport(t, stdout)
		if !rep.Identical || rep.Mode != "byte-identical" || len(rep.Divergences) != 0 {
			t.Fatalf("attempt %d: report %+v", i, rep)
		}
	}
}

// TestBackfillDivergenceExitsThree: -spec absolute on a recording whose
// relative spec did real work diverges with exit 3 and the same report
// every time.
func TestBackfillDivergenceExitsThree(t *testing.T) {
	path := writeRecording(t, nil)
	var first string
	for i := 0; i < 3; i++ {
		code, stdout, stderr := runReplay(t, "-in", path, "-spec", "absolute", "-compact")
		if code != 3 {
			t.Fatalf("attempt %d: exit %d (want 3), stderr %q stdout %s", i, code, stderr, stdout)
		}
		rep := decodeReport(t, stdout)
		if rep.Mode != "backfill" || rep.Identical || len(rep.Divergences) == 0 {
			t.Fatalf("attempt %d: report %+v", i, rep)
		}
		if first == "" {
			first = stdout
		} else if stdout != first {
			t.Fatalf("attempt %d: unstable report:\n%s\nvs\n%s", i, stdout, first)
		}
	}
}

// TestFaultReplayByDefault: a recording with an armed injector replays
// the same schedule (exit 0) by default and under
// -faults-from-recording; -faults off is a backfill that removes the
// injections.
func TestFaultReplayByDefault(t *testing.T) {
	path := writeRecording(t, func(m *record.Manifest) {
		m.FaultSpec = "txn.abort:0.2"
		m.FaultSeed = 9
	})
	for _, args := range [][]string{
		{"-in", path},
		{"-in", path, "-faults-from-recording"},
	} {
		code, stdout, stderr := runReplay(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d, stderr %q stdout %s", args, code, stderr, stdout)
		}
	}
	code, stdout, _ := runReplay(t, "-in", path, "-faults", "off")
	rep := decodeReport(t, stdout)
	if rep.Mode != "backfill" {
		t.Fatalf("faults-off mode %q", rep.Mode)
	}
	if code != 3 || rep.Replayed.InjectedAborts != 0 {
		t.Fatalf("faults-off: exit %d, replayed injected aborts %d", code, rep.Replayed.InjectedAborts)
	}
	if _, _, stderr := runReplay(t, "-in", path, "-faults-from-recording", "-faults", "off"); stderr == "" {
		t.Fatal("conflicting fault flags accepted")
	}
}

// TestUnreadableArtifactExitsFour: damage at any layer — missing file,
// truncated artifact, flipped byte — is exit 4 with a structured JSON
// error naming the file.
func TestUnreadableArtifactExitsFour(t *testing.T) {
	path := writeRecording(t, nil)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	trunc := filepath.Join(dir, "trunc.rsrec")
	os.WriteFile(trunc, good[:len(good)/2], 0o644)
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0xff
	flipped := filepath.Join(dir, "flip.rsrec")
	os.WriteFile(flipped, flip, 0o644)

	for _, in := range []string{filepath.Join(dir, "missing.rsrec"), trunc, flipped} {
		for i := 0; i < 2; i++ {
			code, _, stderr := runReplay(t, "-in", in)
			if code != 4 {
				t.Fatalf("%s attempt %d: exit %d (want 4), stderr %q", in, i, code, stderr)
			}
			var re replayError
			if err := json.Unmarshal([]byte(stderr), &re); err != nil {
				t.Fatalf("%s: stderr not JSON: %v\n%s", in, err, stderr)
			}
			if re.Error != "unreadable-artifact" || re.Path != in {
				t.Fatalf("%s: error %+v", in, re)
			}
		}
	}
}

// TestFromSnapshot: a valid .snap anchor replaces the recording's
// initial state (backfill; state diverges), and a corrupt one is exit 4
// with the snapshot's path in the JSON error.
func TestFromSnapshot(t *testing.T) {
	path := writeRecording(t, nil)
	rec, err := record.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one object so the replay starts from visibly different
	// state.
	snap := map[string]storage.Value{}
	for k, v := range rec.Initial {
		snap[k] = v + 1
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "alt.snap")
	if err := os.WriteFile(snapPath, storage.EncodeSnapshot(1, snap), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runReplay(t, "-in", path, "-from-snapshot", snapPath)
	if code != 3 {
		t.Fatalf("exit %d (want 3: shifted anchor must diverge), stderr %q", code, stderr)
	}
	rep := decodeReport(t, stdout)
	if rep.Mode != "backfill" {
		t.Fatalf("mode %q", rep.Mode)
	}
	hasState := false
	for _, d := range rep.Divergences {
		if d.Kind == "state" {
			hasState = true
		}
	}
	if !hasState {
		t.Fatalf("no state divergence from shifted anchor: %+v", rep.Divergences)
	}

	bad := filepath.Join(dir, "bad.snap")
	os.WriteFile(bad, []byte("RSNPgarbage"), 0o644)
	code, _, stderr = runReplay(t, "-in", path, "-from-snapshot", bad)
	if code != 4 {
		t.Fatalf("corrupt snapshot: exit %d (want 4)", code)
	}
	var re replayError
	if err := json.Unmarshal([]byte(stderr), &re); err != nil {
		t.Fatalf("stderr not JSON: %v\n%s", err, stderr)
	}
	if re.Error != "unreadable-snapshot" || re.Shard != -1 {
		t.Fatalf("error %+v", re)
	}

	// Directory form: the newest decodable snapshot in a WAL dir wins.
	wdir := t.TempDir()
	os.WriteFile(filepath.Join(wdir, "snapshot-0000000000000001.snap"), storage.EncodeSnapshot(1, snap), 0o644)
	code, _, stderr = runReplay(t, "-in", path, "-from-snapshot", wdir)
	if code != 3 {
		t.Fatalf("snapshot dir: exit %d (want 3), stderr %q", code, stderr)
	}
	// An empty dir has no anchor: exit 4.
	code, _, _ = runReplay(t, "-in", path, "-from-snapshot", t.TempDir())
	if code != 4 {
		t.Fatalf("empty snapshot dir: exit %d (want 4)", code)
	}
}

// TestUsageErrors: missing -in and bad overrides are exit 1, not 3/4.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runReplay(t); code != 1 {
		t.Fatal("missing -in accepted")
	}
	path := writeRecording(t, nil)
	if code, _, _ := runReplay(t, "-in", path, "-protocol", "no-such-proto"); code != 1 {
		t.Fatal("unknown protocol override not a usage error")
	}
	if code, _, _ := runReplay(t, "-in", path, "-spec", "no-such-spec"); code != 1 {
		t.Fatal("unknown spec override not a usage error")
	}
}
