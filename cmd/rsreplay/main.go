// rsreplay re-executes a .rsrec recording (rssim -record, rsbench
// -record, or an E16 chaos auto-save) through the engine pipeline and
// compares the outcome against the recorded baseline.
//
// With no overrides the replay is byte-identical mode: a deterministic
// recording must reproduce the same certification verdict, counters,
// fault fingerprint, WAL bytes, stage log and final store, and any
// divergence is a bug (exit 3). Concurrent-driver recordings compare
// schedule-independent facets only (outcome class, verdict,
// invariant) — the goroutine schedule is not reproducible.
//
// Any override (-protocol, -shards, -spec absolute, -faults, ...)
// switches to backfill mode: the same recorded traffic re-runs under
// the altered configuration and the structured divergence report IS
// the deliverable — verdict flips, per-object state diffs, abort-class
// changes. The exit code still reports 3 when the outcomes differ, so
// scripts can distinguish "serializability would have behaved
// identically" (0) from "the spec change shows up" (3).
//
// Faults replay by default: the recording carries the fault spec and
// seed, and the injector's firing schedule is a pure function of both,
// so -faults-from-recording (the default) re-injects the recorded
// incident — including the wedge that produced the artifact. -faults
// off re-runs the traffic fault-free; -faults '<spec>' substitutes a
// new schedule.
//
// Usage:
//
//	rssim -workload banking -record run.rsrec
//	rsreplay -in run.rsrec                     # byte-identical check
//	rsreplay -in run.rsrec -shards 16          # yesterday's wedge at 16 shards
//	rsreplay -in run.rsrec -spec absolute      # backfill under serializability
//	rsreplay -in run.rsrec -faults off
//	rsreplay -in run.rsrec -from-snapshot dir/ # replay against a restored checkpoint
//
// The comparison report is one JSON document on stdout. Errors are a
// single JSON line on stderr carrying the failing file (and shard for
// snapshot errors), matching rsrecover's convention.
//
// Exit status: 0 identical, 1 usage or configuration error, 3
// divergence, 4 unreadable artifact or snapshot.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relser/internal/record"
	"relser/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// replayError is the structured form of a replay failure, emitted as a
// single JSON line on stderr for machine consumption (rsrecover's
// tailError shape).
type replayError struct {
	Error  string `json:"error"` // "unreadable-artifact" | "unreadable-snapshot" | "replay-failed"
	Path   string `json:"path,omitempty"`
	Shard  int    `json:"shard"`
	Detail string `json:"detail"`
}

func emitError(stderr io.Writer, kind, path string, shard int, detail string) {
	line, _ := json.Marshal(replayError{Error: kind, Path: path, Shard: shard, Detail: detail})
	fmt.Fprintln(stderr, string(line))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", ".rsrec recording to replay (required)")
		protocol  = fs.String("protocol", "", "override the protocol (empty = recorded)")
		shards    = fs.Int("shards", 0, "override the shard count (0 = recorded)")
		spec      = fs.String("spec", "", "atomicity spec override: recorded (default) or absolute")
		faults    = fs.String("faults", "", "fault override: recorded (default), off, or a point:rate[:duration] spec")
		fromRec   = fs.Bool("faults-from-recording", false, "re-inject the recorded fault schedule (the default; conflicts with -faults)")
		faultSeed = fs.Int64("fault-seed", 0, "override the injector seed (0 = recorded)")
		snapPath  = fs.String("from-snapshot", "", "replace the recording's anchor: a .snap file or a segmented WAL directory (newest snapshot wins)")
		watchdog  = fs.Duration("watchdog", 0, "override the concurrent driver's stall watchdog (0 = recorded)")
		timeout   = fs.Duration("timeout", 0, "bound the replay's wall time (0 = none)")
		compact   = fs.Bool("compact", false, "emit the report as one JSON line instead of indented")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *in == "" {
		fmt.Fprintln(stderr, "rsreplay: -in is required")
		return 1
	}
	if *fromRec && *faults != "" && *faults != "recorded" {
		fmt.Fprintln(stderr, "rsreplay: -faults-from-recording conflicts with -faults", *faults)
		return 1
	}
	if *fromRec {
		*faults = "recorded"
	}

	rec, err := record.ReadFile(*in)
	if err != nil {
		emitError(stderr, "unreadable-artifact", *in, -1, err.Error())
		return 4
	}

	opts := record.ReplayOptions{
		Protocol:  *protocol,
		Shards:    *shards,
		Spec:      *spec,
		Faults:    *faults,
		FaultSeed: *faultSeed,
		Watchdog:  *watchdog,
	}
	if *snapPath != "" {
		snap, code := loadSnapshot(*snapPath, stderr)
		if code != 0 {
			return code
		}
		opts.Initial = snap
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := record.Replay(ctx, rec, opts)
	if err != nil {
		emitError(stderr, "replay-failed", *in, -1, err.Error())
		return 1
	}

	enc := json.NewEncoder(stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "rsreplay:", err)
		return 1
	}
	if !rep.Identical {
		return 3
	}
	return 0
}

// loadSnapshot resolves -from-snapshot: a .snap file decodes directly;
// a directory is treated as a segmented WAL dir whose newest decodable
// snapshot wins. Failures report the file and shard (snapshot errors
// are whole-store, shard -1) and exit 4 — the artifact-unreadable
// class, since the anchor is part of the replay input.
func loadSnapshot(path string, stderr io.Writer) (map[string]storage.Value, int) {
	info, err := os.Stat(path)
	if err != nil {
		emitError(stderr, "unreadable-snapshot", path, -1, err.Error())
		return nil, 4
	}
	if !info.IsDir() {
		_, snap, err := storage.ReadSnapshotFile(path)
		if err != nil {
			emitError(stderr, "unreadable-snapshot", path, snapShard(err), err.Error())
			return nil, 4
		}
		return snap, 0
	}
	_, _, snap, err := storage.LatestSnapshot(path)
	if err != nil {
		detail := err.Error()
		if errors.Is(err, os.ErrNotExist) && !strings.Contains(detail, path) {
			detail = path + ": " + detail
		}
		emitError(stderr, "unreadable-snapshot", path, snapShard(err), detail)
		return nil, 4
	}
	return snap, 0
}

// snapShard extracts the shard a *storage.SnapshotError names (-1 for
// whole-store snapshots and non-snapshot errors).
func snapShard(err error) int {
	var se *storage.SnapshotError
	if errors.As(err, &se) {
		return se.Shard
	}
	return -1
}
