// rscheck classifies schedules under relative atomicity specifications.
//
// It reads an instance file (see relser.ParseInstance for the format)
// or one of the paper's built-in figures, classifies every named
// schedule into the paper's class hierarchy, explains violations, and
// can emit the relative serialization graph as Graphviz DOT.
//
// Usage:
//
//	rscheck -fig 1                      # classify Figure 1's schedules
//	rscheck -in instance.txt            # classify a file's schedules
//	rscheck -fig 3 -dot S2 > rsg.dot    # RSG of Figure 3's S2 in DOT
//	rscheck -fig 4 -rc                  # include the (exponential)
//	                                    # relatively-consistent test
package main

import (
	"flag"
	"fmt"
	"os"

	"relser/internal/advisor"
	"relser/internal/consistent"
	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/metrics"
	"relser/internal/paperfig"
)

func main() {
	var (
		inPath  = flag.String("in", "", "instance file (defaults to stdin when no -fig)")
		figNum  = flag.Int("fig", 0, "use the paper's Figure N instance (1-4)")
		withRC  = flag.Bool("rc", false, "also run the exponential relatively-consistent test")
		dotName = flag.String("dot", "", "emit the RSG of the named schedule as DOT and exit")
		explain = flag.Bool("explain", true, "explain class violations")
		witness = flag.Bool("witness", false, "print a relatively serial witness for relatively serializable schedules")
		advise  = flag.Bool("advise", false, "for rejected schedules, suggest the unit splits that would admit them")
	)
	flag.Parse()

	inst, err := loadInstance(*inPath, *figNum)
	if err != nil {
		fatal(err)
	}
	if *dotName != "" {
		s, ok := inst.Schedules[*dotName]
		if !ok {
			fatal(fmt.Errorf("no schedule named %q (have %v)", *dotName, inst.Names))
		}
		fmt.Print(core.BuildRSG(s, inst.Spec).Dot(*dotName))
		return
	}

	fmt.Println("Transactions:")
	fmt.Println(indent(inst.Set.String()))
	fmt.Println("\nRelative atomicity:")
	fmt.Println(indent(inst.Spec.String()))
	fmt.Println()

	cols := []string{"schedule", "serial", "rel-atomic", "rel-serial", "rel-serializable", "conflict-ser"}
	if *withRC {
		cols = append(cols, "rel-consistent")
	}
	tb := metrics.NewTable("Classification", cols...)
	type explainRow struct{ name, text string }
	var explains []explainRow
	for _, name := range inst.Names {
		s := inst.Schedules[name]
		c := enumerate.Classify(s, inst.Spec, false)
		row := []any{name, yn(c.Serial), yn(c.RelativelyAtomic), yn(c.RelativelySerial),
			yn(c.RelativelySerializable), yn(c.ConflictSerializable)}
		if *withRC {
			res := consistent.IsRelativelyConsistent(s, inst.Spec)
			row = append(row, yn(res.Consistent))
		}
		tb.AddRow(row...)
		if *explain {
			if ok, v := core.IsRelativelySerial(s, inst.Spec); !ok {
				explains = append(explains, explainRow{name, v.Error()})
			}
		}
		if *witness && c.RelativelySerializable {
			w, err := core.BuildRSG(s, inst.Spec).Witness()
			if err == nil {
				explains = append(explains, explainRow{name, "relatively serial witness: " + w.String()})
			}
		}
		if *advise && !c.RelativelySerializable {
			a := advisor.Advise(s, inst.Spec)
			if a.Possible {
				text := "admissible with the following extra unit boundaries:"
				for _, sug := range a.Suggestions {
					text += "\n    " + sug.String()
				}
				explains = append(explains, explainRow{name, text})
			}
		}
	}
	fmt.Print(tb)
	for _, e := range explains {
		fmt.Printf("\n%s: %s\n", e.name, e.text)
	}
}

func loadInstance(path string, fig int) (*core.Instance, error) {
	if fig != 0 {
		all := paperfig.All()
		if fig < 1 || fig > len(all) {
			return nil, fmt.Errorf("figure %d out of range 1-%d", fig, len(all))
		}
		return all[fig-1].Instance, nil
	}
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return core.ParseInstance(in)
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rscheck:", err)
	os.Exit(1)
}
