package main

import (
	"strings"
	"testing"
)

func TestLoadInstanceFigures(t *testing.T) {
	for fig := 1; fig <= 4; fig++ {
		inst, err := loadInstance("", fig)
		if err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		if inst.Set.NumTxns() == 0 || len(inst.Schedules) == 0 {
			t.Errorf("fig %d: empty instance", fig)
		}
	}
	if _, err := loadInstance("", 9); err == nil {
		t.Error("out-of-range figure accepted")
	}
	if _, err := loadInstance("/nonexistent/path", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestYesNo(t *testing.T) {
	if yn(true) != "yes" || yn(false) != "no" {
		t.Error("yn wrong")
	}
}

func TestIndent(t *testing.T) {
	got := indent("a\nb")
	if got != "  a\n  b" {
		t.Errorf("indent = %q", got)
	}
	if !strings.HasPrefix(indent("x"), "  ") {
		t.Error("indent should prefix two spaces")
	}
}
