package main

import (
	"testing"

	"relser/internal/workload"
)

func buildWorkloadForTest(name string, seed int64, granularity, scale int, crossing bool) (*workload.Workload, error) {
	return workload.Build(workload.BuildParams{
		Name:        name,
		Seed:        seed,
		Granularity: granularity,
		Scale:       scale,
		Crossing:    crossing,
	})
}

func TestBuildWorkloadNames(t *testing.T) {
	for _, name := range []string{"banking", "cadcam", "longlived", "synthetic"} {
		w, err := buildWorkloadForTest(name, 1, 2, 1, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Programs) == 0 {
			t.Errorf("%s: empty workload", name)
		}
	}
	if _, err := buildWorkloadForTest("nope", 1, 2, 1, false); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBuildProtocolNames(t *testing.T) {
	w, err := buildWorkloadForTest("banking", 1, 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"nocc", "s2pl", "sgt", "rsgt", "altruistic", "to", "ral"} {
		p, err := buildProtocol(name, w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: protocol has no name", name)
		}
	}
	if _, err := buildProtocol("nope", w); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestScaleMultipliesPrograms(t *testing.T) {
	w1, err := buildWorkloadForTest("synthetic", 1, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := buildWorkloadForTest("synthetic", 1, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Programs) != 2*len(w1.Programs) {
		t.Errorf("scale 2 gives %d programs, scale 1 gives %d", len(w2.Programs), len(w1.Programs))
	}
}
