// rssim runs a workload through the transaction runtime under a chosen
// concurrency-control protocol and reports throughput, aborts, blocks
// and — via the paper's Theorem 1 — whether the committed schedule is
// relatively serializable.
//
// Usage:
//
//	rssim -workload banking -protocol rsgt -seed 1 -mpl 8
//	rssim -workload longlived -protocol altruistic
//	rssim -workload synthetic -granularity 2 -protocol rsgt -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"relser/internal/core"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/workload"
)

func main() {
	var (
		wname      = flag.String("workload", "banking", "banking | cadcam | longlived | synthetic")
		pname      = flag.String("protocol", "rsgt", "nocc | s2pl | sgt | rsgt | altruistic | to")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		mpl        = flag.Int("mpl", 8, "multiprogramming level")
		gran       = flag.Int("granularity", 2, "synthetic workload atomic-unit length (0 = absolute)")
		scale      = flag.Int("scale", 1, "workload size multiplier")
		trace      = flag.Bool("trace", false, "print the committed schedule")
		dump       = flag.Bool("dump", false, "emit the committed run as an instance file (consumable by rscheck)")
		walPath    = flag.String("wal", "", "write a write-ahead log to this file (recover with rsrecover)")
		concurrent = flag.Bool("concurrent", false, "use the goroutine runtime instead of the deterministic tick driver")
		timeline   = flag.Bool("timeline", false, "render committed instances' lifetimes as an ASCII chart")
		recovery   = flag.Bool("recovery", false, "report the classical recoverability hierarchy (recoverable / ACA / strict)")
		verify     = flag.Bool("verify", true, "certify the committed schedule with the RSG test")
		crossed    = flag.Bool("crossing", true, "banking: audits scan families in alternating directions")
	)
	flag.Parse()

	w, err := buildWorkload(*wname, *seed, *gran, *scale, *crossed)
	if err != nil {
		fatal(err)
	}
	p, err := buildProtocol(*pname, w)
	if err != nil {
		fatal(err)
	}
	var wal *storage.WAL
	if *walPath != "" {
		var f *os.File
		wal, f, err = storage.OpenWALFile(*walPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	// With -dump, stdout carries only the machine-readable instance
	// file; status goes to stderr.
	status := os.Stdout
	if *dump {
		status = os.Stderr
	}
	fmt.Fprintf(status, "workload=%s programs=%d protocol=%s seed=%d mpl=%d\n",
		w.Name, len(w.Programs), p.Name(), *seed, *mpl)
	res, _, err := w.RunWith(p, workload.RunOptions{
		Seed:       *seed,
		MPL:        *mpl,
		WAL:        wal,
		Concurrent: *concurrent,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(status, res)
	if w.Invariant != nil {
		fmt.Fprintln(status, "data invariant: ok")
	}
	if *trace {
		s, _, err := res.CommittedSchedule()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(status, "committed schedule:", s)
	}
	if *timeline {
		fmt.Fprint(status, res.Timeline(64))
	}
	if *recovery {
		props, err := res.RecoveryProperties()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(status, "recovery: recoverable=%v aca=%v strict=%v\n", props.Recoverable, props.ACA, props.Strict)
		if props.Violation != "" {
			fmt.Fprintln(status, "  first violation:", props.Violation)
		}
	}
	if *dump {
		s, sp, err := res.CommittedSchedule()
		if err != nil {
			fatal(err)
		}
		inst := &core.Instance{
			Set:       s.Set(),
			Spec:      sp,
			Schedules: map[string]*core.Schedule{"committed": s},
			Names:     []string{"committed"},
		}
		fmt.Print(core.FormatInstance(inst))
	}
	if *verify {
		if err := res.Verify(); err != nil {
			fmt.Fprintln(status, "verification: FAILED:", err)
			os.Exit(2)
		}
		fmt.Fprintln(status, "verification: committed schedule is relatively serializable (Theorem 1)")
	}
}

func buildWorkload(name string, seed int64, gran, scale int, crossing bool) (*workload.Workload, error) {
	switch name {
	case "banking":
		cfg := workload.DefaultBankingConfig()
		cfg.Customers *= scale
		cfg.CreditAudits *= scale
		cfg.CrossingAudits = crossing
		return workload.Banking(cfg, seed)
	case "cadcam":
		cfg := workload.DefaultCADCAMConfig()
		cfg.Designers *= scale
		cfg.Integrators *= scale
		return workload.CADCAM(cfg, seed)
	case "longlived":
		cfg := workload.DefaultLongLivedConfig()
		cfg.ShortTxns *= scale
		return workload.LongLived(cfg, seed)
	case "synthetic":
		cfg := workload.DefaultSyntheticConfig()
		cfg.Programs *= scale
		cfg.Granularity = gran
		return workload.Synthetic(cfg, seed)
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func buildProtocol(name string, w *workload.Workload) (sched.Protocol, error) {
	switch name {
	case "nocc":
		return sched.NewNoCC(), nil
	case "s2pl":
		return sched.NewS2PL(), nil
	case "sgt":
		return sched.NewSGT(), nil
	case "rsgt":
		return sched.NewRSGT(w.Oracle), nil
	case "altruistic":
		return sched.NewAltruistic(w.Oracle), nil
	case "to":
		return sched.NewTO(), nil
	case "ral":
		return sched.NewRAL(w.Oracle), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rssim:", err)
	os.Exit(1)
}
