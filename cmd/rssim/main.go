// rssim runs a workload through the transaction runtime under a chosen
// concurrency-control protocol and reports throughput, aborts, blocks
// and — via the paper's Theorem 1 — whether the committed schedule is
// relatively serializable.
//
// Usage:
//
//	rssim -workload banking -protocol rsgt -seed 1 -mpl 8
//	rssim -workload longlived -protocol altruistic
//	rssim -workload synthetic -granularity 2 -protocol rsgt -schedule
//	rssim -workload banking -protocol rsgt -trace run.jsonl -metrics
//	rssim -workload banking -faults 'wal.torn:0.01,txn.abort:0.2' -seed 7
//	rssim -workload synthetic -concurrent -ops :6060 -linger 30s
//	rssim -workload banking -concurrent -shards 4 -wal waldir -group-commit
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"relser"
	"relser/internal/core"
	"relser/internal/fault"
	"relser/internal/metrics"
	"relser/internal/obs"
	"relser/internal/record"
	"relser/internal/sched"
	"relser/internal/storage"
	"relser/internal/trace"
	"relser/internal/txn"
	"relser/internal/workload"
)

func main() {
	var (
		wname      = flag.String("workload", "banking", "banking | cadcam | longlived | synthetic")
		pname      = flag.String("protocol", "rsgt", strings.Join(sched.ProtocolNames(), " | "))
		seed       = flag.Int64("seed", 1, "deterministic seed")
		mpl        = flag.Int("mpl", 8, "multiprogramming level")
		gran       = flag.Int("granularity", 2, "synthetic workload atomic-unit length (0 = absolute)")
		scale      = flag.Int("scale", 1, "workload size multiplier")
		schedule   = flag.Bool("schedule", false, "print the committed schedule")
		dump       = flag.Bool("dump", false, "emit the committed run as an instance file (consumable by rscheck)")
		walPath    = flag.String("wal", "", "write a write-ahead log to this file (recover with rsrecover)")
		groupWAL   = flag.Bool("group-commit", false, "use the per-shard segmented WAL with group commit; -wal names a directory instead of a file (recover with rsrecover <dir>)")
		walShards  = flag.Int("wal-shards", 0, "durability lanes for -group-commit (0 = follow -shards; rounded to a power of two)")
		walSegs    = flag.Int64("wal-segments", 1<<20, "segment rotation threshold in bytes for -group-commit")
		concurrent = flag.Bool("concurrent", false, "use the goroutine runtime instead of the deterministic tick driver")
		shards     = flag.Int("shards", 1, "shard count for the concurrent driver's hot path (rounded up to a power of two; requires -concurrent)")
		timeline   = flag.Bool("timeline", false, "render committed instances' lifetimes as an ASCII chart")
		recovery   = flag.Bool("recovery", false, "report the classical recoverability hierarchy (recoverable / ACA / strict)")
		verify     = flag.Bool("verify", true, "certify the committed schedule with the RSG test")
		crossed    = flag.Bool("crossing", true, "banking: audits scan families in alternating directions")
		tracePath  = flag.String("trace", "", "write structured runtime events (JSONL) to this file")
		chromePath = flag.String("chrome", "", "write the event trace in Chrome trace_event format to this file")
		dotDir     = flag.String("dotdir", "", "write RSG DOT snapshots taken at rejection points into this directory")
		metricsOn  = flag.Bool("metrics", false, "print the runtime metrics registry after the run")
		faultSpec  = flag.String("faults", "", "arm deterministic fault injection: point:rate[:duration],... (e.g. 'wal.torn:0.01,txn.abort:0.2'); same seed replays the same fault schedule")
		timeout    = flag.Duration("timeout", 0, "bound the whole run's wall time via a context deadline (0 disables); on expiry in-flight transactions are rolled back and any WAL stays recoverable")
		deadline   = flag.Int64("deadline", 0, "deprecated alias kept for old scripts: per-instance logical-age abort bound (0 disables); prefer -timeout for bounding runs")
		watchdog   = flag.Duration("watchdog", 0, "deprecated alias kept for old scripts: concurrent-driver progress-free wedge bound (0 = default 10s, negative disables); prefer -timeout, which cancels the same run context")
		opsAddr    = flag.String("ops", "", "serve the live ops endpoint on this address for the run's duration (e.g. ':6060'): /metrics, /healthz, /debug/flight, /debug/spans, /debug/trace and /debug/pprof")
		linger     = flag.Duration("linger", 0, "keep the ops endpoint serving this long after the run completes, for post-run scraping (requires -ops)")
		flightDir  = flag.String("flightdir", "", "write automatic flight-recorder dumps (watchdog wedge, abort storm, livelock escalation, cancellation) into this directory (requires -ops)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (alias kept for old scripts; -ops also serves live profiles at /debug/pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file (alias kept for old scripts; -ops also serves live profiles at /debug/pprof)")
		recordPath = flag.String("record", "", "capture the run into a .rsrec recording at this path (replay or backfill it with rsreplay)")
		rsgRetire  = flag.Bool("rsg-retire", true, "bounded-memory certification: retire finished transactions' graph state in epochs and certify with the vector-clock fast path (disable for history-proportional memory, e.g. to compare)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	params := workload.BuildParams{
		Name:        *wname,
		Seed:        *seed,
		Scale:       *scale,
		Granularity: *gran,
		Crossing:    *crossed,
	}
	w, err := workload.Build(params)
	if err != nil {
		fatal(err)
	}
	p, err := buildProtocol(*pname, w)
	if err != nil {
		fatal(err)
	}
	lanes := *walShards
	if lanes == 0 {
		lanes = *shards
	}
	var (
		wal    storage.WALSink
		swal   *storage.ShardedWAL
		walTee bytes.Buffer
	)
	switch {
	case *walPath != "" && *groupWAL:
		swal, err = storage.OpenShardedWAL(*walPath, storage.SegmentedOptions{
			Shards:       lanes,
			SegmentBytes: *walSegs,
		})
		if err != nil {
			fatal(err)
		}
		wal = swal
	case *walPath != "":
		f, err := os.Create(*walPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		// When recording, tee the log bytes so the artifact's WAL hash
		// matches what landed on disk.
		var wtr io.Writer = f
		if *recordPath != "" {
			wtr = io.MultiWriter(f, &walTee)
		}
		wal = storage.NewWAL(wtr)
	case *groupWAL:
		fatal(fmt.Errorf("-group-commit requires -wal <directory>"))
	}
	// With -dump, stdout carries only the machine-readable instance
	// file; status goes to stderr.
	status := os.Stdout
	if *dump {
		status = os.Stderr
	}

	var (
		tracer *trace.Tracer
		buf    *trace.Buffer
	)
	if *tracePath != "" || *chromePath != "" || *dotDir != "" {
		buf = trace.NewBuffer()
		tracer = trace.New(buf)
		if *dotDir != "" {
			if err := os.MkdirAll(*dotDir, 0o755); err != nil {
				fatal(err)
			}
			dir := *dotDir
			tracer.DotSink = func(name, dot string) {
				path := filepath.Join(dir, name+".dot")
				if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "rssim: dot snapshot:", err)
				}
			}
		}
	}
	var registry *metrics.Registry
	if *metricsOn {
		registry = metrics.NewRegistry()
	}
	var (
		plane  *obs.Plane
		opsSrv *obs.Server
	)
	if *opsAddr != "" {
		if *flightDir != "" {
			if err := os.MkdirAll(*flightDir, 0o755); err != nil {
				fatal(err)
			}
		}
		plane = obs.New(obs.Options{Registry: registry, DumpDir: *flightDir})
		opsSrv, err = plane.Serve(*opsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(status, "ops: serving http://%s (/metrics /healthz /debug/flight /debug/spans /debug/trace /debug/pprof)\n", opsSrv.Addr())
	}
	var injector *fault.Injector
	if *faultSpec != "" {
		spec, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		injector = fault.New(*seed, spec)
		fmt.Fprintf(status, "faults: armed %s (seed %d)\n", spec, *seed)
		if plane != nil {
			// Self-describing dumps: the spec, seed and live fingerprint
			// ride every flight dump's header and /healthz.
			plane.AnnotateFaults(spec.String(), *seed, injector.Fingerprint)
		}
	}
	var recorder *record.Recorder
	if *recordPath != "" {
		m := record.Manifest{
			Workload:   params,
			Protocol:   *pname,
			Seed:       *seed,
			MPL:        *mpl,
			Shards:     *shards,
			Concurrent: *concurrent,
			Deadline:   *deadline,
			Watchdog:   *watchdog,
			RSGRetire:  "off",
		}
		if *rsgRetire {
			m.RSGRetire = "on"
		}
		if injector != nil {
			m.FaultSpec = injector.Spec().String()
			m.FaultSeed = *seed
		}
		switch {
		case *walPath != "" && *groupWAL:
			m.WALMode = "segmented"
			m.WALShards = lanes
			m.WALSegmentBytes = *walSegs
		case *walPath != "":
			m.WALMode = "single"
		}
		recorder = record.NewRecorder(m)
		recorder.SetInitial(w.Initial)
		if registry != nil {
			recorder.SetMetrics(registry)
		}
		if plane != nil {
			plane.SetRecording(*recordPath, recorder.StageEvents)
		}
		fmt.Fprintf(status, "record: capturing to %s\n", *recordPath)
	}

	fmt.Fprintf(status, "workload=%s programs=%d protocol=%s seed=%d mpl=%d\n",
		w.Name, len(w.Programs), p.Name(), *seed, *mpl)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var hooks txn.Hooks
	if recorder != nil {
		hooks = recorder.Hooks(txn.Hooks{})
	}
	res, store, err := relser.Run(ctx, w, p, relser.RunOptions{
		Seed:       *seed,
		MPL:        *mpl,
		WAL:        wal,
		Concurrent: *concurrent,
		Shards:     *shards,
		Tracer:     tracer,
		Metrics:    registry,
		Obs:        plane,
		Faults:     injector,
		Deadline:   *deadline,
		Watchdog:   *watchdog,
		Hooks:      hooks,

		DisableRSGRetire: !*rsgRetire,
	})
	if injector != nil {
		reportFaults(status, injector)
	}
	if swal != nil {
		// Close before judging the run: under injected faults the run
		// error is the interesting outcome, but the segment chain should
		// still land on disk for rsrecover.
		swal.Close() //nolint:errcheck // a latched crash error is already folded into the run error
		ws := swal.Stats()
		fmt.Fprintf(status, "wal: lanes=%d appends=%d group-commits=%d fsyncs=%d rotations=%d\n",
			swal.Shards(), ws.Appends, ws.GroupCommits, ws.Fsyncs, ws.Rotations)
	}
	if recorder != nil {
		switch {
		case swal != nil:
			if set, serr := storage.ReadWALDir(*walPath); serr == nil {
				recorder.SetWALBytes(record.FlattenSegmentSet(set))
			} else {
				fmt.Fprintln(os.Stderr, "rssim: record: reading wal dir:", serr)
			}
		case *walPath != "":
			recorder.SetWALBytes(walTee.Bytes())
		}
		// An invariant violation arrives as (res != nil, err != nil); let
		// the recorder re-derive verdict and invariant from the result so
		// replay (which does the same) compares like with like.
		finishErr := err
		if res != nil && err != nil {
			finishErr = nil
		}
		recorder.Finish(res, finishErr, injector, store, w)
		if werr := recorder.WriteFile(*recordPath); werr != nil {
			fmt.Fprintln(os.Stderr, "rssim: record:", werr)
		} else {
			fmt.Fprintf(status, "record: wrote %s (%d stage events)\n", *recordPath, recorder.StageEvents())
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(status, res)
	if rs := res.Retire; rs.Enabled {
		fmt.Fprintf(status, "rsg-retire: live=%d retired=%d epochs=%d rebases=%d fastpath=%.1f%% (%d/%d)\n",
			rs.LiveVertices, rs.RetiredVertices, rs.GraphEpochs, rs.Rebases,
			100*rs.HitRate(), rs.FastPathHits, rs.FastPathHits+rs.FastPathMisses)
	}
	if w.Invariant != nil {
		fmt.Fprintln(status, "data invariant: ok")
	}
	if *schedule {
		s, _, err := res.CommittedSchedule()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(status, "committed schedule:", s)
	}
	if *timeline {
		fmt.Fprint(status, res.Timeline(64))
	}
	if *recovery {
		props, err := res.RecoveryProperties()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(status, "recovery: recoverable=%v aca=%v strict=%v\n", props.Recoverable, props.ACA, props.Strict)
		if props.Violation != "" {
			fmt.Fprintln(status, "  first violation:", props.Violation)
		}
	}
	if buf != nil {
		reportTrace(status, buf, w, *tracePath, *chromePath)
	}
	if registry != nil {
		snap := registry.Snapshot()
		if _, err := snap.Table("runtime metrics").WriteTo(status); err != nil {
			fatal(err)
		}
	}
	if *dump {
		s, sp, err := res.CommittedSchedule()
		if err != nil {
			fatal(err)
		}
		inst := &core.Instance{
			Set:       s.Set(),
			Spec:      sp,
			Schedules: map[string]*core.Schedule{"committed": s},
			Names:     []string{"committed"},
		}
		fmt.Print(core.FormatInstance(inst))
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if opsSrv != nil {
		if *linger > 0 {
			fmt.Fprintf(status, "ops: lingering %s for post-run scrapes (http://%s)\n", *linger, opsSrv.Addr())
			time.Sleep(*linger)
		}
		if err := opsSrv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "rssim: ops shutdown:", err)
		}
		fmt.Fprintf(status, "ops: flight recorder retained %d of %d events; %d spans\n",
			len(plane.Flight()), plane.Recorder().Recorded(), len(plane.Spans()))
		dumps, derrs := plane.Dumps()
		for _, d := range dumps {
			fmt.Fprintln(status, "ops: flight dump:", d)
		}
		for _, derr := range derrs {
			fmt.Fprintln(os.Stderr, "rssim:", derr)
		}
	}
	if *verify {
		if err := res.Verify(); err != nil {
			fmt.Fprintln(status, "verification: FAILED:", err)
			os.Exit(2)
		}
		fmt.Fprintln(status, "verification: committed schedule is relatively serializable (Theorem 1)")
	}
}

// reportTrace writes the requested trace outputs and summarizes the
// captured events: kind counts, every scheduler rejection explanation
// (with its concrete RSG cycle, when the protocol names one), and an
// offline replay verification of those cycles against the theory.
func reportTrace(status *os.File, buf *trace.Buffer, w *workload.Workload, tracePath, chromePath string) {
	events := buf.Events()
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteJSONL(f, events); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(status, "trace: %d events -> %s\n", len(events), tracePath)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChrome(f, events); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(status, "trace: chrome trace_event -> %s\n", chromePath)
	}
	counts := trace.CountKinds(events)
	var kinds []string
	for k, n := range counts {
		kinds = append(kinds, fmt.Sprintf("%s=%d", k, n))
	}
	sortStrings(kinds)
	fmt.Fprintln(status, "trace events:", strings.Join(kinds, " "))
	rejects := 0
	for _, ev := range events {
		if ev.Kind != trace.KindCycleReject && ev.Kind != trace.KindConflictCycle && ev.Kind != trace.KindDeadlock {
			continue
		}
		rejects++
		fmt.Fprintf(status, "  [%s] instance %d %s: %s\n", ev.Kind, ev.Instance, ev.Op, ev.Reason)
		if ev.Cycle != nil {
			fmt.Fprintf(status, "    cycle: %s\n", ev.Cycle)
		}
	}
	if n := counts[trace.KindCycleReject]; n > 0 {
		checked, err := trace.VerifyCycles(events, w.Oracle.Cuts)
		if err != nil {
			fmt.Fprintf(status, "trace: cycle replay verification FAILED after %d cycle(s): %v\n", checked, err)
		} else {
			fmt.Fprintf(status, "trace: all %d rejection cycle(s) replay-verified against the offline RSG\n", checked)
		}
	}
}

// reportFaults prints the injector's realized firing schedule and its
// fingerprint; the same seed and spec reproduce both exactly.
func reportFaults(status *os.File, in *fault.Injector) {
	fmt.Fprintf(status, "faults: fingerprint %s\n", in.Fingerprint())
	for _, ps := range in.Schedule() {
		fmt.Fprintf(status, "  %-18s consulted %d fired %d", ps.Point, ps.Calls, ps.Fired)
		if n := len(ps.FiredAt); n > 0 {
			show := ps.FiredAt
			if n > 8 {
				show = show[:8]
			}
			fmt.Fprintf(status, " at calls %v", show)
			if n > 8 {
				fmt.Fprintf(status, " (+%d more)", n-8)
			}
		}
		fmt.Fprintln(status)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// buildProtocol resolves a protocol name against the sched registry,
// binding the workload's atomicity oracle to protocols that take one.
func buildProtocol(name string, w *workload.Workload) (sched.Protocol, error) {
	return sched.NewProtocol(name, w.Oracle)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rssim:", err)
	os.Exit(1)
}
