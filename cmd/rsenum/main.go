// rsenum enumerates the complete schedule space of an instance and
// prints the class census of Figure 5: how many interleavings fall in
// each of the paper's correctness classes, with witness schedules for
// every proper containment gap.
//
// Usage:
//
//	rsenum -fig 1          # census of the Figure 1 instance
//	rsenum -fig 4 -rc=false
//	rsenum -in instance.txt
//	rsenum -fig 1 -absolute  # same transactions, absolute atomicity
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"relser/internal/core"
	"relser/internal/enumerate"
	"relser/internal/metrics"
	"relser/internal/paperfig"
)

func main() {
	var (
		inPath   = flag.String("in", "", "instance file (defaults to stdin when no -fig)")
		figNum   = flag.Int("fig", 0, "use the paper's Figure N instance (1-4)")
		withRC   = flag.Bool("rc", true, "include the relatively-consistent column (exponential per schedule)")
		absolute = flag.Bool("absolute", false, "replace the specification with absolute atomicity")
		maxOps   = flag.Int("maxops", 12, "refuse instances with more operations (the space is factorial)")
		sample   = flag.Int("sample", 0, "classify this many random interleavings instead of the full space")
		seed     = flag.Int64("seed", 1, "seed for -sample")
	)
	flag.Parse()

	inst, err := loadInstance(*inPath, *figNum)
	if err != nil {
		fatal(err)
	}
	spec := inst.Spec
	if *absolute {
		spec = core.NewSpec(inst.Set)
	}
	if n := inst.Set.NumOps(); *sample == 0 && n > *maxOps {
		fatal(fmt.Errorf("instance has %d operations; census over %v interleavings refused (use -sample N or raise -maxops)",
			n, enumerate.Count(inst.Set)))
	}

	var c enumerate.Census
	if *sample > 0 {
		fmt.Printf("Interleavings: %v (sampling %d)\n\n", enumerate.Count(inst.Set), *sample)
		c = enumerate.SampleCensus(inst.Set, spec, *sample, *seed, *withRC)
	} else {
		fmt.Printf("Interleavings: %v\n\n", enumerate.Count(inst.Set))
		c = enumerate.TakeCensus(inst.Set, spec, *withRC)
	}
	tb := metrics.NewTable("Class census", "class", "schedules", "fraction")
	add := func(name string, n int) {
		tb.AddRow(name, n, float64(n)/float64(c.Total))
	}
	add("all interleavings", c.Total)
	add("serial", c.Serial)
	add("relatively atomic (Def. 1)", c.RelativelyAtomic)
	if *withRC {
		add("relatively consistent [FÖ89]", c.RelativelyConsistent)
	}
	add("relatively serial (Def. 2)", c.RelativelySerial)
	add("relatively serializable (Thm. 1)", c.RelativelySerializable)
	add("conflict serializable", c.ConflictSerializable)
	fmt.Print(tb)
	if c.ContainmentViolations > 0 {
		fatal(fmt.Errorf("%d Figure 5 containment violations — this is a bug", c.ContainmentViolations))
	}
	if len(c.Witnesses) > 0 {
		fmt.Println("\nWitnesses for proper gaps:")
		names := make([]string, 0, len(c.Witnesses))
		for name := range c.Witnesses {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-28s %s\n", name+":", c.Witnesses[name])
		}
	}
}

func loadInstance(path string, fig int) (*core.Instance, error) {
	if fig != 0 {
		all := paperfig.All()
		if fig < 1 || fig > len(all) {
			return nil, fmt.Errorf("figure %d out of range 1-%d", fig, len(all))
		}
		return all[fig-1].Instance, nil
	}
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return core.ParseInstance(in)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsenum:", err)
	os.Exit(1)
}
