package main

import (
	"os"
	"path/filepath"
	"testing"

	"relser/internal/analysis/checker"
	"relser/internal/analysis/load"
	"relser/internal/analysis/speclint"
	"relser/internal/core"
)

// repoRoot is the module directory, two levels above this package.
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

// TestRepoIsVetClean runs every analyzer over the whole repository:
// the tree must stay free of unsuppressed findings, the same gate CI
// enforces.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	pkgs, err := load.Packages(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, err := checker.Run(pkgs, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestExampleSpecs pins the triage of the example spec files:
// partitioned certifies, degenerate errors, fig1 is in between.
func TestExampleSpecs(t *testing.T) {
	specs := filepath.Join(repoRoot(t), "examples", "specs")
	check := func(name string) speclint.Report {
		t.Helper()
		f, err := os.Open(filepath.Join(specs, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		inst, err := core.ParseInstance(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return speclint.CheckInstance(inst)
	}

	if rep := check("partitioned.txt"); !rep.Certified || rep.HasErrors() {
		t.Errorf("partitioned.txt must certify cleanly: %+v", rep)
	}
	if rep := check("degenerate.txt"); rep.Certified || !rep.HasErrors() {
		t.Errorf("degenerate.txt must be rejected: %+v", rep)
	}
	if rep := check("fig1.txt"); rep.Certified || rep.HasErrors() {
		t.Errorf("fig1.txt must neither certify nor error: %+v", rep)
	}
}

// TestSelectAnalyzers covers the -run flag resolution.
func TestSelectAnalyzers(t *testing.T) {
	got, err := selectAnalyzers("stripelock,speclint")
	if err == nil {
		t.Fatalf("unknown analyzer accepted: %v", got)
	}
	got, err = selectAnalyzers("stripelock, registrydrift")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "stripelock" || got[1].Name != "registrydrift" {
		t.Fatalf("wrong selection: %v", got)
	}
	if got, _ := selectAnalyzers(""); len(got) != len(all) {
		t.Fatalf("empty -run must select all analyzers")
	}
}
