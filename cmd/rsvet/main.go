// Command rsvet is the repository's static-analysis gate. It has two
// sides:
//
// Vet mode (default) runs the custom analyzers over Go packages:
//
//	rsvet ./...
//	rsvet -list
//	rsvet -run stripelock,registrydrift ./...
//
// Diagnostics print as file:line:col: message [analyzer]; the exit
// status is 1 when any diagnostic survives //rsvet:allow suppression.
//
// Spec mode statically checks relative-atomicity instance files
// (the internal/core text format):
//
//	rsvet -spec examples/specs/partitioned.txt
//	rsvet -spec -certify examples/specs/*.txt
//
// Each file's findings print with severities; exit status is 1 when
// any file has an error-severity finding, and with -certify also when
// any file fails static potential-RSG certification. Exit status 2
// means the tool itself failed (unparsable file, load error).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"relser/internal/analysis"
	"relser/internal/analysis/checker"
	"relser/internal/analysis/coreimmut"
	"relser/internal/analysis/ctxflow"
	"relser/internal/analysis/detlint"
	"relser/internal/analysis/hookshape"
	"relser/internal/analysis/infer"
	"relser/internal/analysis/load"
	"relser/internal/analysis/registrydrift"
	"relser/internal/analysis/specbuild"
	"relser/internal/analysis/speclint"
	"relser/internal/analysis/stripelock"
	"relser/internal/analysis/terminalops"
	"relser/internal/analysis/walsync"
	"relser/internal/core"
)

// all registers every analyzer, in reporting order.
var all = []*analysis.Analyzer{
	coreimmut.Analyzer,
	ctxflow.Analyzer,
	detlint.Analyzer,
	hookshape.Analyzer,
	registrydrift.Analyzer,
	specbuild.Analyzer,
	stripelock.Analyzer,
	terminalops.Analyzer,
	walsync.Analyzer,
}

func main() {
	var (
		specMode  = flag.Bool("spec", false, "check relative-atomicity instance files instead of Go packages")
		certify   = flag.Bool("certify", false, "with -spec: also fail files that cannot be statically certified safe")
		inferMode = flag.Bool("infer", false, "synthesize the finest certifiable spec from a workload package's core.T sites")
		run       = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		dir       = flag.String("C", ".", "directory to resolve package patterns in")
	)
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *specMode {
		os.Exit(specMain(flag.Args(), *certify))
	}
	if *inferMode {
		os.Exit(inferMain(*dir, flag.Args()))
	}
	os.Exit(vetMain(*dir, flag.Args(), *run))
}

// inferMain extracts transaction programs from the given packages and
// prints the synthesized spec in instance-file notation. Exit status 0
// means every package's spec earned the static full-chop certificate;
// 1 means at least one spec needs per-schedule certification (the
// blocking witnesses print to stderr); 2 means the tool failed.
func inferMain(dir string, patterns []string) int {
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "rsvet -infer: no package patterns given")
		return 2
	}
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsvet:", err)
		return 2
	}
	status := 0
	synthesized := 0
	for _, pkg := range pkgs {
		res, err := infer.Package(pkg)
		if err != nil {
			if strings.Contains(err.Error(), "no core.T construction sites") && len(pkgs) > 1 {
				continue // pattern matched non-workload packages too
			}
			fmt.Fprintln(os.Stderr, "rsvet:", err)
			return 2
		}
		synthesized++
		for _, note := range res.Notes {
			fmt.Fprintf(os.Stderr, "rsvet -infer: %s\n", note)
		}
		fmt.Print(res.InstanceText())
		if res.Report.Certified {
			fmt.Printf("# certified: static potential-RSG is acyclic; safe for every execution\n")
			continue
		}
		status = 1
		for _, f := range res.Report.Findings {
			fmt.Fprintf(os.Stderr, "rsvet -infer: %s: %s\n", pkg.PkgPath, f)
		}
	}
	if synthesized == 0 {
		fmt.Fprintln(os.Stderr, "rsvet -infer: no core.T construction sites in the matched packages")
		return 2
	}
	return status
}

// vetMain loads the requested packages and applies the analyzers.
func vetMain(dir string, patterns []string, run string) int {
	analyzers, err := selectAnalyzers(run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsvet:", err)
		return 2
	}
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsvet:", err)
		return 2
	}
	findings, err := checker.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rsvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// specMain parses each instance file and reports speclint findings.
func specMain(files []string, certify bool) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "rsvet -spec: no instance files given")
		return 2
	}
	status := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsvet:", err)
			return 2
		}
		inst, err := core.ParseInstance(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsvet: %s: %v\n", path, err)
			return 2
		}
		rep := speclint.CheckInstance(inst)
		for _, finding := range rep.Findings {
			fmt.Printf("%s: %s\n", path, finding)
		}
		if rep.Certified {
			fmt.Printf("%s: statically certified safe for every execution\n", path)
		}
		if rep.HasErrors() || (certify && !rep.Certified) {
			status = 1
		}
	}
	return status
}

// selectAnalyzers resolves the -run flag.
func selectAnalyzers(run string) ([]*analysis.Analyzer, error) {
	if run == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
