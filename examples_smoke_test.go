package relser_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end (compile +
// run via the Go toolchain) and checks for its signature output line,
// guarding the runnable-examples deliverable against rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile-and-run is slow; skipped with -short")
	}
	cases := []struct {
		path string
		want string
	}{
		{"./examples/quickstart", "relatively serial witness:"},
		{"./examples/banking", "certified relatively serializable"},
		{"./examples/cadcam", "provably NOT in multilevel atomicity"},
		{"./examples/longlived", "protocol comparison"},
		{"./examples/recovery", "full-log recovery matches the live store"},
		{"./examples/advisor", "repaired spec admits Srs: true"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.path).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", tc.path, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("output of %s missing %q:\n%s", tc.path, tc.want, out)
			}
		})
	}
}

// TestToolsRun smoke-tests the CLI binaries on built-in inputs.
func TestToolsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("tool compile-and-run is slow; skipped with -short")
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"run", "./cmd/rscheck", "-fig", "1"}, "Classification"},
		{[]string{"run", "./cmd/rsenum", "-fig", "2", "-rc=false"}, "Class census"},
		{[]string{"run", "./cmd/rssim", "-workload", "longlived", "-protocol", "rsgt"}, "relatively serializable"},
		{[]string{"run", "./cmd/rsbench", "-e", "E1"}, "[PASS]"},
		{[]string{"run", "./cmd/rsbench", "-list"}, "E14"},
		{[]string{"run", "./cmd/rschop", "-fig", "2", "-piece", "1"}, "verdict"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.Join(tc.args[1:], "_"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				// rschop exits 2 on incorrect choppings by design.
				if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
					t.Fatalf("go %v: %v\n%s", tc.args, err, out)
				}
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}
