// Banking: the paper's §1 motivating scenario end to end. Families of
// accounts receive customer transfers while credit audits scan family
// groups and a bank audit scans everything. The example runs the same
// mix under strict two-phase locking and under the paper's RSGT
// protocol, shows the concurrency difference, proves every committed
// schedule relatively serializable with the offline RSG test, and
// checks balance conservation on the stored data.
package main

import (
	"fmt"
	"log"

	"relser/internal/sched"
	"relser/internal/workload"
)

func main() {
	cfg := workload.BankingConfig{
		Families:          4,
		AccountsPerFamily: 3,
		Customers:         16,
		CreditAudits:      4,
		FamiliesPerAudit:  2,
		BankAudits:        1,
		CrossingAudits:    true,
		InitialBalance:    100,
	}
	fmt.Printf("banking: %d families x %d accounts, %d transfers, %d credit audits, %d bank audit(s)\n\n",
		cfg.Families, cfg.AccountsPerFamily, cfg.Customers, cfg.CreditAudits, cfg.BankAudits)

	const seed = 42
	for _, proto := range []string{"s2pl", "rsgt"} {
		w, err := workload.Banking(cfg, seed)
		if err != nil {
			log.Fatal(err)
		}
		var p sched.Protocol
		if proto == "s2pl" {
			p = sched.NewS2PL()
		} else {
			p = sched.NewRSGT(w.Oracle)
		}
		res, err := w.Run(p, seed, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		if err := res.Verify(); err != nil {
			log.Fatalf("%s emitted an uncertified schedule: %v", proto, err)
		}
		fmt.Printf("  -> committed schedule certified relatively serializable; balances conserved\n\n")
	}

	// Show what the audit units buy: a credit audit over two families
	// exposes a unit boundary at the family border, so transfers in the
	// other family may run in the middle of the audit — an interleaving
	// absolute atomicity forbids.
	w, err := workload.Banking(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, prog := range w.Programs {
		if prog.Len() == 2*cfg.AccountsPerFamily { // a credit audit
			other := w.Programs[0] // a customer
			cuts := w.Oracle.Cuts(prog, other)
			fmt.Printf("credit audit T%d exposes unit boundaries %v to customer T%d\n",
				prog.ID, cuts, other.ID)
			break
		}
	}
}
