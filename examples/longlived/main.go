// Longlived: the §5 scenario — one long scan-and-update transaction
// sweeping many objects while short transactions arrive continuously.
// The long transaction declares a unit boundary after every object it
// finishes. The example compares four protocols on the same mix:
// strict 2PL (shorts wait for the whole long transaction), altruistic
// locking (the long transaction donates finished objects, [SGMA87]),
// SGT, and the paper's RSGT, which exploits the declared units
// directly. Every run's committed schedule is certified with the
// offline RSG test.
package main

import (
	"fmt"
	"log"

	"relser/internal/metrics"
	"relser/internal/sched"
	"relser/internal/workload"
)

func main() {
	cfg := workload.LongLivedConfig{Objects: 16, LongTxns: 1, ShortTxns: 30}
	fmt.Printf("longlived: 1 sweep over %d objects (unit per object), %d short update transactions\n\n",
		cfg.Objects, cfg.ShortTxns)

	tb := metrics.NewTable("protocol comparison (seed-averaged)",
		"protocol", "ticks", "blocks", "aborts", "avg concurrency", "verified")
	seeds := []int64{1, 2, 3, 4, 5}
	for _, proto := range []string{"s2pl", "altruistic", "sgt", "rsgt"} {
		var ticks, blocks, aborts int
		var conc float64
		verified := true
		for _, seed := range seeds {
			w, err := workload.LongLived(cfg, seed)
			if err != nil {
				log.Fatal(err)
			}
			var p sched.Protocol
			switch proto {
			case "s2pl":
				p = sched.NewS2PL()
			case "altruistic":
				p = sched.NewAltruistic(w.Oracle)
			case "sgt":
				p = sched.NewSGT()
			case "rsgt":
				p = sched.NewRSGT(w.Oracle)
			}
			res, err := w.Run(p, seed, 8)
			if err != nil {
				log.Fatal(err)
			}
			ticks += res.Ticks
			blocks += res.Blocks
			aborts += res.Aborts
			conc += res.AvgConcurrency
			if err := res.Verify(); err != nil {
				verified = false
			}
		}
		n := float64(len(seeds))
		tb.AddRow(proto, float64(ticks)/n, float64(blocks)/n, float64(aborts)/n, conc/n, verified)
	}
	fmt.Print(tb)
	fmt.Println("\nreading the table: 2PL makes short transactions wait out the sweep (blocks);")
	fmt.Println("altruistic locking donates finished objects early; RSGT needs no locks at all —")
	fmt.Println("the relative atomicity units make the interleavings provably correct (Theorem 1).")
}
