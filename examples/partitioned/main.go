// Partitioned workload: two transfer transactions contend on the
// account objects while an audit transaction only touches the log, so
// the conflict graph splits into components {T1, T2} and {T3}. Every
// operation is declared inline, step by step — the shape rsvet -infer
// reads access sets from:
//
//	go run ./cmd/rsvet -infer ./examples/partitioned
//
// emits the finest certifiable spec for this workload, which matches
// examples/specs/partitioned.txt (allowall between T1 and T2 both
// ways, absolute atomicity elsewhere).
package main

import (
	"fmt"
	"log"

	"relser"
)

func main() {
	// The same workload examples/specs/partitioned.txt declares in
	// instance notation.
	t1 := relser.T(1, relser.R("acct_a"), relser.W("acct_a"), relser.R("acct_b"), relser.W("acct_b"))
	t2 := relser.T(2, relser.R("acct_a"), relser.W("acct_a"))
	t3 := relser.T(3, relser.R("log"), relser.W("log"))
	ts, err := relser.NewTxnSet(t1, t2, t3)
	if err != nil {
		log.Fatal(err)
	}

	// The finest chop: every atomicity relation inside the {T1, T2}
	// component is fully chopped; T3 is in its own component, so its
	// (absolute) atomicity never constrains certification.
	spec := relser.NewSpec(ts)
	check(spec.AllowAll(1, 2))
	check(spec.AllowAll(2, 1))
	fmt.Println("Specification:")
	fmt.Println(spec)

	// The interleaved transfer schedule from the instance file is
	// relatively serializable under the chopped spec even though the
	// two transfers overlap on acct_a.
	s, err := relser.ParseSchedule(ts,
		"r1[acct_a] r2[acct_a] w1[acct_a] w2[acct_a] r3[log] r1[acct_b] w1[acct_b] w3[log]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSchedule:", s)
	fmt.Println("conflict serializable:", relser.IsConflictSerializable(s))
	fmt.Println("relatively serializable:", relser.IsRelativelySerializable(s, spec))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
