// Recovery: durability end to end. The banking workload runs under the
// paper's RSGT protocol with a write-ahead log attached; the example
// then simulates a crash by truncating the log at several points and
// recovers a store from each prefix, showing that exactly the committed
// transactions survive and balance conservation holds at every cut.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"relser"
	"relser/internal/storage"
	"relser/internal/workload"
)

func main() {
	cfg := workload.DefaultBankingConfig()
	w, err := relser.Banking(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	p, err := relser.NewProtocol("rsgt", w.Oracle)
	if err != nil {
		log.Fatal(err)
	}
	// The root entry point runs under a context; the timeout bounds the
	// whole run's wall time (far above what this example needs — it is
	// here to show the cancellation plumbing, not to fire).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var logBuf bytes.Buffer
	res, store, err := relser.Run(ctx, w, p, relser.RunOptions{
		Seed: 11,
		MPL:  8,
		WAL:  storage.NewWAL(&logBuf),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("run:", res)
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed schedule certified relatively serializable")
	fmt.Printf("WAL: %d bytes\n\n", logBuf.Len())

	full := logBuf.Bytes()
	fmt.Println("crash simulation (recover from log prefixes):")
	for _, frac := range []int{25, 50, 75, 100} {
		cut := len(full) * frac / 100
		recovered, report, err := storage.Recover(bytes.NewReader(full[:cut]), w.Initial)
		if err != nil {
			log.Fatal(err)
		}
		sumOK := "balances conserved"
		if w.Invariant != nil {
			if err := w.Invariant(recovered.Snapshot()); err != nil {
				sumOK = "INVARIANT BROKEN: " + err.Error()
			}
		}
		fmt.Printf("  %3d%% of log: %s — %s\n", frac, report, sumOK)
	}

	// Sanity: the full-log recovery matches the live store exactly.
	recovered, _, err := storage.Recover(bytes.NewReader(full), w.Initial)
	if err != nil {
		log.Fatal(err)
	}
	live := store.Snapshot()
	for obj, v := range recovered.Snapshot() {
		if live[obj] != v {
			log.Fatalf("mismatch on %s: recovered %d, live %d", obj, v, live[obj])
		}
	}
	fmt.Println("\nfull-log recovery matches the live store object for object")
}
