// Quickstart: declare transactions and relative atomicity, classify a
// schedule, and inspect the relative serialization graph — a
// five-minute tour of the public API using the paper's own running
// example (Figure 1).
package main

import (
	"fmt"
	"log"

	"relser"
)

func main() {
	// The paper's Figure 1 transactions.
	t1 := relser.T(1, relser.R("x"), relser.W("x"), relser.W("z"), relser.R("y"))
	t2 := relser.T(2, relser.R("y"), relser.W("y"), relser.R("x"))
	t3 := relser.T(3, relser.W("x"), relser.W("y"), relser.W("z"))
	ts, err := relser.NewTxnSet(t1, t2, t3)
	if err != nil {
		log.Fatal(err)
	}

	// Relative atomicity: Atomicity(Ti, Tj) partitions Ti into atomic
	// units as seen by Tj. Unit lengths must sum to the transaction
	// length; unspecified pairs default to absolute atomicity.
	spec := relser.NewSpec(ts)
	check(spec.SetUnits(1, 2, 2, 2))    // T1 to T2: [r1x w1x][w1z r1y]
	check(spec.SetUnits(1, 3, 2, 1, 1)) // T1 to T3: [r1x w1x][w1z][r1y]
	check(spec.SetUnits(2, 1, 1, 2))    // T2 to T1: [r2y][w2y r2x]
	check(spec.SetUnits(2, 3, 2, 1))
	check(spec.SetUnits(3, 1, 2, 1))
	check(spec.SetUnits(3, 2, 2, 1))
	fmt.Println("Specification:")
	fmt.Println(spec)

	// The paper's schedule Srs: relatively serial (correct) although it
	// is not serial and not even conflict serializable.
	srs, err := relser.ParseSchedule(ts,
		"r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSchedule Srs:", srs)
	report("serial", srs.IsSerial())
	atomic, _ := relser.IsRelativelyAtomic(srs, spec)
	report("relatively atomic (Def. 1)", atomic)
	serial, _ := relser.IsRelativelySerial(srs, spec)
	report("relatively serial (Def. 2)", serial)
	report("conflict serializable", relser.IsConflictSerializable(srs))
	report("relatively serializable (Thm. 1)", relser.IsRelativelySerializable(srs, spec))

	// The paper's S2 is not relatively serial — the library explains
	// why — but its RSG is acyclic, so a conflict-equivalent relatively
	// serial schedule exists and can be extracted.
	s2, err := relser.ParseSchedule(ts,
		"r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSchedule S2: ", s2)
	if ok, viol := relser.IsRelativelySerial(s2, spec); !ok {
		fmt.Println("  not relatively serial:", viol)
	}
	rsg := relser.BuildRSG(s2, spec)
	fmt.Printf("  RSG: %d vertices, %d arcs, acyclic=%v\n",
		rsg.NumVertices(), rsg.NumArcs(), rsg.Acyclic())
	witness, err := rsg.Witness()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  relatively serial witness:", witness)
	fmt.Println("  conflict equivalent to S2: ", relser.ConflictEquivalent(witness, s2))
}

func report(what string, ok bool) {
	fmt.Printf("  %-34s %v\n", what+":", ok)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
