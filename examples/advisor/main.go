// Advisor: specification repair in action. Two scenarios:
//
//  1. the classic lost update — rejected under absolute atomicity; the
//     advisor names the exact atomicity the user would have to give up
//     to declare it acceptable;
//  2. the paper's Srs under absolute atomicity — rejected classically,
//     and the advisor rediscovers (a subset of) the Figure 1
//     specification that the paper wrote by hand.
package main

import (
	"fmt"
	"log"

	"relser"
	"relser/internal/advisor"
)

func main() {
	// Scenario 1: lost update.
	ts := relser.MustTxnSet(
		relser.T(1, relser.R("x"), relser.W("x")),
		relser.T(2, relser.R("x"), relser.W("x")),
	)
	s, err := relser.ParseSchedule(ts, "r1[x] r2[x] w1[x] w2[x]")
	if err != nil {
		log.Fatal(err)
	}
	abs := relser.NewSpec(ts)
	fmt.Println("schedule:", s)
	fmt.Println("conflict serializable:       ", relser.IsConflictSerializable(s))
	fmt.Println("relatively serializable (abs):", relser.IsRelativelySerializable(s, abs))
	advice := advisor.Advise(s, abs)
	fmt.Println("\nto admit it, declare:")
	for _, sug := range advice.Suggestions {
		fmt.Println("  -", sug)
	}
	fmt.Println("repaired spec admits:", relser.IsRelativelySerializable(s, advice.Spec))
	fmt.Println("  (reading this as a user: you are agreeing that T1 may run between")
	fmt.Println("   T2's read and write of x — a lost update you deem acceptable)")

	// Scenario 2: the paper's Srs rediscovered.
	t1 := relser.T(1, relser.R("x"), relser.W("x"), relser.W("z"), relser.R("y"))
	t2 := relser.T(2, relser.R("y"), relser.W("y"), relser.R("x"))
	t3 := relser.T(3, relser.W("x"), relser.W("y"), relser.W("z"))
	ts2 := relser.MustTxnSet(t1, t2, t3)
	srs, err := relser.ParseSchedule(ts2,
		"r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n---\nthe paper's Srs under absolute atomicity:")
	fmt.Println("relatively serializable:", relser.IsRelativelySerializable(srs, relser.NewSpec(ts2)))
	advice2 := advisor.Advise(srs, relser.NewSpec(ts2))
	fmt.Println("advisor suggests:")
	for _, sug := range advice2.Suggestions {
		fmt.Println("  -", sug)
	}
	fmt.Println("repaired spec admits Srs:", relser.IsRelativelySerializable(srs, advice2.Spec))
	fmt.Println("\nthe hand-written Figure 1 specification declares boundaries at")
	fmt.Println("exactly such positions — the advisor recovers the needed relaxation")
	fmt.Println("from the execution itself.")
}
