// CADCAM: the collaborative design scenario of §1/§5. Designers are
// partitioned into teams; inside a team, design transactions expose a
// unit boundary after each part update (team members may interleave at
// part granularity), while across teams transactions observe each other
// atomically. The example also shows how Garcia-Molina compatibility
// sets and a Lynch multilevel hierarchy compile into the same general
// specification machinery, and where they fall short of full relative
// atomicity.
package main

import (
	"fmt"
	"log"

	"relser/internal/core"
	"relser/internal/sched"
	"relser/internal/spec"
	"relser/internal/workload"
)

func main() {
	cfg := workload.CADCAMConfig{
		Teams:          2,
		PartsPerTeam:   4,
		Designers:      12,
		PartsPerUpdate: 3,
		Integrators:    2,
	}
	fmt.Printf("cadcam: %d teams x %d parts, %d designers, %d integrators\n\n",
		cfg.Teams, cfg.PartsPerTeam, cfg.Designers, cfg.Integrators)

	const seed = 7
	w, err := workload.CADCAM(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	res, err := w.Run(sched.NewRSGT(w.Oracle), seed, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  -> certified relatively serializable; no part update lost")

	// Related-work specification models on a small design group.
	ts := core.MustTxnSet(
		core.T(1, core.R("p1"), core.W("p1")),
		core.T(2, core.R("p2"), core.W("p2")),
		core.T(3, core.R("p3"), core.W("p3")),
	)
	gm, err := spec.CompatibilitySets(ts, [][]core.TxnID{{1, 2}, {3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGarcia-Molina compatibility sets {T1,T2},{T3} compile to:")
	fmt.Println(gm)

	ml := &spec.Multilevel{
		Set:  ts,
		Root: spec.Group("company", spec.Group("team-A", spec.Leaf(1), spec.Leaf(2)), spec.Leaf(3)),
		Cuts: map[core.TxnID][][]int{
			1: {nil, {1}}, // atomic to outsiders, breakable inside team-A
			2: {nil, {1}},
		},
	}
	mlSpec, err := ml.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLynch multilevel hierarchy:")
	fmt.Print(ml)
	fmt.Println("compiles to:")
	fmt.Println(mlSpec)

	// Full relative atomicity exceeds both: a cyclic fine-grainedness
	// relation has no realizing hierarchy.
	cyc := core.NewSpec(ts)
	for _, pair := range [][2]core.TxnID{{1, 2}, {2, 3}, {3, 1}} {
		if err := cyc.AllowAll(pair[0], pair[1]); err != nil {
			log.Fatal(err)
		}
	}
	if ok, _ := spec.MultilevelExpressible(cyc); !ok {
		fmt.Println("\ncyclic fine-grainedness (T1 fine to T2 fine to T3 fine to T1):")
		fmt.Println("  expressible in relative atomicity, provably NOT in multilevel atomicity (§4)")
	}
}
