package relser_test

import (
	"fmt"
	"io"
	"strings"

	"relser"
)

// Example reproduces the paper's Figure 1 classification: Sra is
// relatively atomic (correct) although it is not serial — and not even
// conflict serializable.
func Example() {
	t1 := relser.T(1, relser.R("x"), relser.W("x"), relser.W("z"), relser.R("y"))
	t2 := relser.T(2, relser.R("y"), relser.W("y"), relser.R("x"))
	t3 := relser.T(3, relser.W("x"), relser.W("y"), relser.W("z"))
	ts, _ := relser.NewTxnSet(t1, t2, t3)

	spec := relser.NewSpec(ts)
	spec.SetUnits(1, 2, 2, 2)
	spec.SetUnits(1, 3, 2, 1, 1)
	spec.SetUnits(2, 1, 1, 2)
	spec.SetUnits(2, 3, 2, 1)
	spec.SetUnits(3, 1, 2, 1)
	spec.SetUnits(3, 2, 2, 1)

	sra, _ := relser.ParseSchedule(ts,
		"r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]")
	atomic, _ := relser.IsRelativelyAtomic(sra, spec)
	fmt.Println("serial:", sra.IsSerial())
	fmt.Println("relatively atomic:", atomic)
	fmt.Println("conflict serializable:", relser.IsConflictSerializable(sra))
	fmt.Println("relatively serializable:", relser.IsRelativelySerializable(sra, spec))
	// Output:
	// serial: false
	// relatively atomic: true
	// conflict serializable: false
	// relatively serializable: true
}

// ExampleRSG_Witness extracts a conflict-equivalent relatively serial
// schedule from an acyclic relative serialization graph — the
// constructive direction of the paper's Theorem 1.
func ExampleRSG_Witness() {
	t1 := relser.T(1, relser.W("x"), relser.R("z"))
	t2 := relser.T(2, relser.R("x"), relser.W("y"))
	t3 := relser.T(3, relser.R("z"), relser.R("y"))
	ts, _ := relser.NewTxnSet(t1, t2, t3)
	spec := relser.NewSpec(ts)
	spec.SetUnits(1, 3, 1, 1)
	spec.SetUnits(2, 1, 1, 1)
	spec.SetUnits(2, 3, 1, 1)
	spec.SetUnits(3, 1, 1, 1)

	s, _ := relser.ParseSchedule(ts, "w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]")
	rsg := relser.BuildRSG(s, spec)
	fmt.Println("arcs:", rsg.NumArcs(), "acyclic:", rsg.Acyclic())
	w, _ := rsg.Witness()
	ok, _ := relser.IsRelativelySerial(w, spec)
	fmt.Println("witness relatively serial:", ok)
	fmt.Println("conflict equivalent:", relser.ConflictEquivalent(w, s))
	// Output:
	// arcs: 12 acyclic: true
	// witness relatively serial: true
	// conflict equivalent: true
}

// ExampleIsRelativelySerial_violation shows the diagnostic a failed
// Definition 2 check carries (the paper's Figure 2 scenario).
func ExampleIsRelativelySerial_violation() {
	t1 := relser.T(1, relser.W("x"), relser.R("z"))
	t2 := relser.T(2, relser.W("y"))
	t3 := relser.T(3, relser.R("y"), relser.W("z"))
	ts, _ := relser.NewTxnSet(t1, t2, t3)
	spec := relser.NewSpec(ts) // absolute: [w1x r1z] is one unit for T2

	s, _ := relser.ParseSchedule(ts, "w1[x] w2[y] r3[y] w3[z] r1[z]")
	if ok, violation := relser.IsRelativelySerial(s, spec); !ok {
		fmt.Println(violation)
	}
	// Output:
	// core: w2[y] interleaves AtomicUnit(T1[0..1], relative to T2) and r1[z] depends on w2[y]
}

// ExampleParseInstance loads a full instance — transactions, relative
// atomicity and schedules — from the text format.
func ExampleParseInstance() {
	const text = `
txn 1: r[a] w[a]
txn 2: w[a]
atomicity 1 2: [r[a]] [w[a]]
schedule S: r1[a] w2[a] w1[a]
`
	inst, err := relser.ParseInstance(newReader(text))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := inst.Schedules["S"]
	atomic, _ := relser.IsRelativelyAtomic(s, inst.Spec)
	fmt.Println("relatively atomic:", atomic)
	fmt.Println("relatively serializable:", relser.IsRelativelySerializable(s, inst.Spec))
	// Output:
	// relatively atomic: true
	// relatively serializable: true
}

// newReader avoids importing strings in the example file's shown code.
func newReader(s string) io.Reader { return strings.NewReader(s) }
